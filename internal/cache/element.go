// Package cache implements BrAID's Cache Management System (Section 5 of
// the paper): a main-memory relational store of *views* (cache elements
// defined by CAQL expressions), a query planner/optimizer that reuses cached
// data through subsumption, an advice manager driving prefetching, indexing,
// replacement, generalization and lazy evaluation, an execution monitor for
// parallel cache/remote subqueries, and the Remote DBMS Interface that
// translates CAQL to the remote DML.
//
// The CMS is a concurrent multi-session engine: the cache manager is sharded
// (manager.go), elements carry their own lock so several sessions can read
// one extension or index at once, and prefetches run on a bounded worker
// pool (prefetch.go). Lock ordering is shard → element, never the reverse;
// see DESIGN.md §10.
package cache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/caql"
	"repro/internal/relation"
)

// Mode distinguishes the two representations of a relation in the cache
// (Section 5.1): a full extension, or a generator producing tuples on
// demand.
type Mode uint8

// Element representation modes.
const (
	ModeExtension Mode = iota
	ModeGenerator
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeGenerator {
		return "generator"
	}
	return "extension"
}

// Element is one cache element: a relation defined by a CAQL expression,
// stored as an extension or a (memoized) generator, with optional attribute
// indexes and bookkeeping for replacement decisions.
//
// Elements are safe for concurrent use: mu guards the representation
// (mode/extension/memo/indexes/sorted representations/selection counts), and
// the replacement bookkeeping is atomic so Touch never needs a lock. An
// element's Def and canonical form are immutable after construction.
type Element struct {
	ID  int
	Def *caql.Query
	// AdviceName is the view specification the element instantiates or
	// generalizes, when known; it links the element to path-expression
	// predictions.
	AdviceName string
	// canon caches Def.Canonical(); canonicalization is allocation-heavy and
	// the manager keys its shards and exact-match index on it.
	canon string

	// mu guards the representation fields below. Element locks are leaves:
	// code holding an element lock never acquires a shard lock (DESIGN.md
	// §10 lock ordering: shard → element, never the reverse).
	mu sync.Mutex
	// Mode is guarded by mu; read it via Materialized/String (or under a
	// single-session test where no concurrent upgrade can run).
	Mode   Mode
	schema *relation.Schema
	ext    *relation.Relation // valid in ModeExtension
	memo   *relation.Memo     // valid in ModeGenerator

	indexes map[int]*relation.Index // by column
	// sorted holds co-existing, alternative representations of the same
	// extension (Section 5.2: "the case where alternative sortings are
	// required"); keyed by sort column, built on demand and memoized.
	sorted map[int]*relation.Relation
	// selUses counts equality selections per column, driving heuristic
	// index builds on unadvised columns.
	selUses map[int]int
	size    int64

	// Replacement bookkeeping (Section 5.4: LRU modified by advice).
	lastUse atomic.Int64
	hits    atomic.Int64
	pinned  bool
	// readyAtSim is the owning session's virtual time at which the element's
	// data is fully present (prefetched elements may still be "in flight").
	// Immutable once the element is inserted into the manager.
	readyAtSim float64
	// prefetched marks elements loaded ahead of demand by path-expression
	// advice. Immutable after construction.
	prefetched bool
	// builtEpoch is the backend catalog epoch the element's data was fetched
	// under (the client's observed epoch when the fetch that built it began —
	// conservative: never newer than the data). 0 means the transport does
	// not report epochs, which disables the staleness defense for this
	// element. Set before manager insertion, immutable after.
	builtEpoch uint64
	// ownerSID is the session that inserted the element while its data was
	// still in (simulated) flight; 0 means published — visible to every
	// session. Prefetched elements stay session-private until the owning
	// session's clock passes readyAtSim, so other sessions never observe
	// "not yet ready" data (materialization-gated cross-session visibility).
	ownerSID atomic.Int64
}

// noteSelection records an equality selection on a column (index heuristics).
func (e *Element) noteSelection(col int) {
	e.mu.Lock()
	if e.selUses == nil {
		e.selUses = make(map[int]int)
	}
	e.selUses[col]++
	e.mu.Unlock()
}

// selCount returns the recorded equality-selection count for a column.
func (e *Element) selCount(col int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.selUses[col]
}

// hasIndex reports whether an index exists on the column.
func (e *Element) hasIndex(col int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.indexes[col] != nil
}

// newExtensionElement builds an extension-mode element.
func newExtensionElement(id int, def *caql.Query, ext *relation.Relation) *Element {
	return &Element{
		ID:      id,
		Def:     def,
		canon:   def.Canonical(),
		Mode:    ModeExtension,
		schema:  ext.Schema(),
		ext:     ext,
		indexes: make(map[int]*relation.Index),
		size:    ext.SizeBytes(),
	}
}

// newGeneratorElement builds a generator-mode element over a source
// iterator; tuples are memoized as they are demanded.
func newGeneratorElement(id int, def *caql.Query, schema *relation.Schema, src relation.Iterator) *Element {
	return &Element{
		ID:      id,
		Def:     def,
		canon:   def.Canonical(),
		Mode:    ModeGenerator,
		schema:  schema,
		memo:    relation.NewMemo(src),
		indexes: make(map[int]*relation.Index),
	}
}

// Canonical returns the element definition's cached canonical form.
func (e *Element) Canonical() string { return e.canon }

// Schema returns the element's schema.
func (e *Element) Schema() *relation.Schema { return e.schema }

// visibleTo reports whether the element may be served to the given session:
// either it is published (owner 0) or that session owns it.
func (e *Element) visibleTo(sid int64) bool {
	o := e.ownerSID.Load()
	return o == 0 || o == sid
}

// publish makes the element visible to every session.
func (e *Element) publish() { e.ownerSID.Store(0) }

// Iter returns an iterator over the element's tuples. For generator-mode
// elements this re-reads memoized tuples and produces further ones on
// demand.
func (e *Element) Iter() relation.Iterator {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Mode == ModeGenerator {
		return e.memo.Iter()
	}
	return e.ext.Iter()
}

// Extension forces materialization and returns the full extension, flipping
// a generator-mode element to extension mode (eager upgrade).
func (e *Element) Extension() *relation.Relation {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.extensionLocked()
}

func (e *Element) extensionLocked() *relation.Relation {
	if e.Mode == ModeGenerator {
		tuples := e.memo.DrainAll()
		e.ext = relation.FromTuples(e.Def.Name(), e.schema, tuples)
		e.Mode = ModeExtension
		e.memo = nil
		e.size = e.ext.SizeBytes()
	}
	return e.ext
}

// Materialized reports whether the element's data is fully present.
func (e *Element) Materialized() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Mode == ModeExtension || e.memo.Exhausted()
}

// SizeBytes returns the current resource accounting for the element,
// including indexes.
func (e *Element) SizeBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sizeLocked()
}

func (e *Element) sizeLocked() int64 {
	n := e.size
	if e.Mode == ModeGenerator && e.memo != nil {
		n += int64(e.memo.Produced()) * 64
	}
	for _, ix := range e.indexes {
		n += ix.SizeBytes()
	}
	for _, r := range e.sorted {
		n += int64(8 * r.Len()) // shared tuples; count the slice overhead
	}
	return n
}

// SortedBy returns the extension ordered by the given column — a
// co-existing alternative representation of the same data, memoized so one
// build serves every later ordered use (Section 5.2). It forces
// materialization.
func (e *Element) SortedBy(col int) *relation.Relation {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.sorted[col]; ok {
		return r
	}
	if e.sorted == nil {
		e.sorted = make(map[int]*relation.Relation)
	}
	r := e.extensionLocked().Clone().SortBy([]int{col})
	e.sorted[col] = r
	return r
}

// Index returns the element's index on the given column, building it if
// requested and absent.
func (e *Element) Index(col int, build bool) *relation.Index {
	ix, _ := e.indexBuilt(col, build)
	return ix
}

// indexBuilt is Index plus a report of whether this call performed the build.
// Index building requires materialization. Concurrent callers racing to build
// the same index serialize on the element lock; the first build wins (built
// is true for it alone) and later callers reuse it.
func (e *Element) indexBuilt(col int, build bool) (ix *relation.Index, built bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ix, ok := e.indexes[col]; ok {
		return ix, false
	}
	if !build {
		return nil, false
	}
	ix = relation.BuildIndex(e.extensionLocked(), []int{col})
	e.indexes[col] = ix
	return ix, true
}

// String renders a cache-model row for humans.
func (e *Element) String() string {
	size := e.SizeBytes()
	e.mu.Lock()
	mode := e.Mode
	e.mu.Unlock()
	return fmt.Sprintf("E%d[%s, %s, %dB, hits=%d] %s",
		e.ID, mode, e.AdviceName, size, e.hits.Load(), strings.TrimSuffix(e.Def.String(), "."))
}
