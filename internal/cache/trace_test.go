package cache

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/remotedb"
)

// TestCrossTierTrace runs a remote-miss query through a CMS whose pooled v2
// transport talks to a real TCP server, with one tracer wired into both
// tiers (as a single-process deployment would share a ring): the CMS spans
// and the server/engine spans must land under ONE trace ID, stitched by the
// trace ID the pool puts on the wire request.
func TestCrossTierTrace(t *testing.T) {
	e, _ := fixtureEngine(t, 7, 30)
	tr := obs.NewTracer(1, 256)
	e.SetTracer(tr)
	srv := remotedb.NewServerWithOptions(e, remotedb.ServerOptions{Tracer: tr})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	costs := remotedb.DefaultCosts()
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{Costs: costs})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	cms := New(p, Options{Features: AllFeatures(), Costs: costs, Tracer: tr})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	// A 2-subgoal conjunction translates to a join SQL: remote miss, planned
	// execution, every tier instruments it.
	drainQ(t, s, `d(X, Y) :- b2(X, Z) & b3(Z, "a", Y)`)

	// Find the cms.query root, then collect every span in its trace. The
	// server commits its stream span asynchronously after the client drains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		byName := map[string]bool{}
		var root uint64
		for _, sp := range tr.Spans() {
			if sp.Name == "cms.query" {
				root = sp.TraceID
			}
		}
		if root != 0 {
			for _, sp := range tr.Spans() {
				if sp.TraceID == root {
					byName[sp.Name] = true
				}
			}
		}
		if byName["cms.query"] && byName["cms.remote_fetch"] && byName["server.stream"] &&
			(byName["engine.plancache"] || byName["engine.optimize"] || byName["engine.execute"]) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cross-tier trace incomplete; trace %x has %v", root, byName)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCMSMetricsRegistry: a CMS built with a metrics registry exposes its
// counters read-through — the Prometheus text must reflect the same numbers
// Stats() reports, without any double accounting.
func TestCMSMetricsRegistry(t *testing.T) {
	e, _ := fixtureEngine(t, 8, 30)
	reg := obs.NewRegistry()
	cms := newCMS(t, e, Options{Features: AllFeatures(), Metrics: reg})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	q := `d(X, Y) :- b2(X, Z) & b3(Z, "a", Y)`
	drainQ(t, s, q)
	drainQ(t, s, q)

	st := cms.Stats()
	if st.Queries != 2 || st.CacheHits != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"braid_cms_queries_total 2",
		"braid_cms_cache_hits_total 1",
		"braid_pool_requests_total",
		"braid_cms_query_us",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, out)
		}
	}
}
