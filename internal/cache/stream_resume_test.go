package cache

import (
	"testing"
	"time"

	"repro/internal/caql"
	"repro/internal/remotedb"
)

// killServer starts a server for the fixture engine whose listener severs
// every streamed result after two response frames: every remote fetch is
// truncated mid-relation unless the client repairs it.
func killServer(t *testing.T, seed int64) (*remotedb.Server, string, caql.MapSource) {
	t.Helper()
	engine, src := fixtureEngine(t, seed, 25)
	srv := remotedb.NewServerWithOptions(engine, remotedb.ServerOptions{
		FrameTuples: 4,
		Faults:      &remotedb.ListenerFaults{Seed: seed, StreamKillRate: 1.0, StreamKillAfter: 2},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, src
}

// TestStreamKillNeverCachesTruncatedResult: a fetch whose stream dies
// mid-flight must fail the QUERY — never install the delivered prefix as a
// cache element. A truncated relation in the cache would silently answer
// every later exact match and subsumption probe with missing tuples, which is
// strictly worse than the failure it hides.
func TestStreamKillNeverCachesTruncatedResult(t *testing.T) {
	srv, addr, src := killServer(t, 83)
	// A plain pooled client: no ResilientClient, so a dead stream stays dead
	// and the fetch error must propagate through the cache layer.
	pool, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:        1,
		FrameTuples: 4,
		Redial:      true,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	cms := New(pool, Options{Features: AllFeatures(), Costs: remotedb.DefaultCosts()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	const q = `q(X, Y) :- b2(X, Y)`
	if _, err := s.QueryText(q); err == nil {
		t.Fatal("query over a killed stream must fail, not answer from a truncated fetch")
	}
	if st := cms.Stats(); st.Failed != 1 || st.Completed != 0 {
		t.Fatalf("dispatch accounting after truncated fetch: %+v", st)
	}

	// Swap the hostile listener for a healthy one on the same address (the
	// pool redials) and re-issue the SAME query: it must go remote and return
	// the full relation. If the truncated prefix had been cached, this would
	// be an exact cache hit with missing tuples instead.
	srv.Close()
	engineBack, _ := fixtureEngineFromSource(t, src)
	srv2 := remotedb.NewServer(engineBack)
	if _, err := srv2.Listen(addr); err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	time.Sleep(20 * time.Millisecond)

	got := drainQ(t, s, q)
	want, err := caql.Eval(caql.MustParse(q), src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("post-recovery answer wrong: got %d tuples, want %d (truncated result cached?)",
			got.Len(), want.Len())
	}
	if st := cms.Stats(); st.CacheHits != 0 || st.ExactHits != 0 {
		t.Fatalf("the re-query hit the cache — a failed fetch left an element behind: %+v", st)
	}
}

// TestStreamKillRepairedFetchIsCacheable is the positive control: the SAME
// hostile listener, but with the resilient layer in place — the fetch is
// repaired mid-flight, the query answers correctly, and the (complete) result
// is cached like any other.
func TestStreamKillRepairedFetchIsCacheable(t *testing.T) {
	_, addr, src := killServer(t, 83)
	pool, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:        2,
		FrameTuples: 4,
		Redial:      true,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rc := remotedb.NewResilientClient(pool, remotedb.Resilience{
		JitterSeed:      83,
		MaxRetries:      50,
		BreakerFailures: -1,
		BaseBackoff:     200 * time.Microsecond,
		MaxBackoff:      2 * time.Millisecond,
	})
	cms := New(rc, Options{Features: AllFeatures(), Costs: remotedb.DefaultCosts()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	const q = `q(X, Y) :- b2(X, Y)`
	got := drainQ(t, s, q)
	want, err := caql.Eval(caql.MustParse(q), src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("repaired fetch answer wrong: got %d tuples, want %d", got.Len(), want.Len())
	}
	st := cms.Stats()
	if st.StreamResumes == 0 {
		t.Fatalf("kill-everything listener but no resumes recorded: %+v", st)
	}
	// The repeat is an exact cache hit: the repaired result was complete and
	// cacheable.
	again := drainQ(t, s, q)
	if !again.EqualAsSet(want) {
		t.Fatal("cached repeat answer wrong")
	}
	if st := cms.Stats(); st.CacheHits == 0 {
		t.Fatalf("repeat did not hit the cache: %+v", st)
	}
}
