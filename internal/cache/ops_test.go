package cache

import (
	"testing"

	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

func TestQueryUnion(t *testing.T) {
	e, src := fixtureEngine(t, 61, 40)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	u, err := caql.ParseUnion(`
		d(X, Y) :- b2(X, Y) & Y < 3.
		d(X, Y) :- b2(X, Y) & Y > 5.
	`)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := s.QueryUnion(u)
	if err != nil {
		t.Fatal(err)
	}
	got := stream.Drain("got")
	want, err := caql.EvalUnion(u, src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("union wrong:\ngot %v\nwant %v", got.Sort(), want.Sort())
	}
	// Branches are cached individually: re-running the union is local.
	before := cms.Stats().RemoteRequests
	stream, _ = s.QueryUnion(u)
	stream.Drain("again")
	if cms.Stats().RemoteRequests != before {
		t.Fatal("union re-run should be cache-served")
	}
	// Invalid unions propagate errors.
	if _, err := s.QueryUnion(&caql.Union{}); err == nil {
		t.Fatal("empty union should error")
	}
}

func TestQueryAgg(t *testing.T) {
	e, src := fixtureEngine(t, 62, 40)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	a := &caql.AggQuery{
		Inner:   caql.MustParse("d(X, Y) :- b2(X, Y)"),
		GroupBy: []int{0},
		Specs:   []relation.AggSpec{{Op: relation.AggCount, Col: -1}, {Op: relation.AggMax, Col: 1}},
	}
	stream, err := s.QueryAgg(a)
	if err != nil {
		t.Fatal(err)
	}
	got := stream.Drain("got")
	want, err := caql.EvalAgg(a, src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Fatalf("agg wrong:\ngot %v\nwant %v", got.Sort(), want.Sort())
	}
	bad := &caql.AggQuery{Inner: a.Inner, GroupBy: []int{9}}
	if _, err := s.QueryAgg(bad); err == nil {
		t.Fatal("out-of-range group-by should error")
	}
}

func TestQueryFixpoint(t *testing.T) {
	// A small graph with a cycle: edges 1->2->3->1, 3->4.
	e := newEngineWithEdges(t, [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}})
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	q := caql.MustParse("r(X, Y) :- edge(X, Y)")
	stream, err := s.QueryFixpoint(q)
	if err != nil {
		t.Fatal(err)
	}
	got := stream.Drain("tc")
	// TC: from each of 1,2,3 you reach {1,2,3,4} = 12 pairs; from 4 nothing.
	if got.Len() != 12 {
		t.Fatalf("closure size = %d, want 12: %v", got.Len(), got.Sort())
	}
	// Memoized: second call adds no remote requests and is a cache hit.
	before := cms.Stats()
	stream, _ = s.QueryFixpoint(q.Clone())
	stream.Drain("tc2")
	after := cms.Stats()
	if after.RemoteRequests != before.RemoteRequests {
		t.Fatal("memoized fixpoint should not refetch")
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Fatal("memoized fixpoint should count as a hit")
	}
	// Non-binary views are rejected.
	if _, err := s.QueryFixpoint(caql.MustParse("r(X) :- edge(X, Y)")); err == nil {
		t.Fatal("non-binary fixpoint should error")
	}
}

func TestQueryFixpointRestricted(t *testing.T) {
	// The closure of a *view* (not just a base relation): only edges with
	// weight under 10 participate.
	e := newEngineWithWeightedEdges(t, [][3]int64{
		{1, 2, 5}, {2, 3, 5}, {3, 4, 50}, // heavy edge breaks the chain
	})
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()
	q := caql.MustParse("r(X, Y) :- wedge(X, Y, W) & W < 10")
	stream, err := s.QueryFixpoint(q)
	if err != nil {
		t.Fatal(err)
	}
	got := stream.Drain("tc")
	// 1->2, 2->3, 1->3 only.
	if got.Len() != 3 {
		t.Fatalf("restricted closure = %v", got.Sort())
	}
}

func newEngineWithEdges(t *testing.T, edges [][2]int64) *remotedb.Engine {
	t.Helper()
	e := remotedb.NewEngine()
	rel := relation.New("edge", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt},
		relation.Attr{Name: "b", Kind: relation.KindInt}))
	for _, ed := range edges {
		rel.MustAppend(relation.Tuple{relation.Int(ed[0]), relation.Int(ed[1])})
	}
	e.LoadTable(rel)
	return e
}

func newEngineWithWeightedEdges(t *testing.T, edges [][3]int64) *remotedb.Engine {
	t.Helper()
	e := remotedb.NewEngine()
	rel := relation.New("wedge", relation.NewSchema(
		relation.Attr{Name: "a", Kind: relation.KindInt},
		relation.Attr{Name: "b", Kind: relation.KindInt},
		relation.Attr{Name: "w", Kind: relation.KindInt}))
	for _, ed := range edges {
		rel.MustAppend(relation.Tuple{relation.Int(ed[0]), relation.Int(ed[1]), relation.Int(ed[2])})
	}
	e.LoadTable(rel)
	return e
}

func TestElementSortedRepresentations(t *testing.T) {
	def := caql.MustParse("g(X, Y) :- b2(X, Y)")
	ext := relation.New("g", relation.NewSchema(
		relation.Attr{Name: "X", Kind: relation.KindInt},
		relation.Attr{Name: "Y", Kind: relation.KindInt}))
	for _, v := range []int64{3, 1, 2} {
		ext.MustAppend(relation.Tuple{relation.Int(v), relation.Int(10 - v)})
	}
	e := newExtensionElement(1, def, ext)
	byX := e.SortedBy(0)
	if byX.Tuple(0)[0].AsInt() != 1 || byX.Tuple(2)[0].AsInt() != 3 {
		t.Fatalf("sorted by X wrong: %v", byX)
	}
	byY := e.SortedBy(1)
	if byY.Tuple(0)[1].AsInt() != 7 {
		t.Fatalf("sorted by Y wrong: %v", byY)
	}
	// The original extension order is untouched (co-existing reps).
	if e.Extension().Tuple(0)[0].AsInt() != 3 {
		t.Fatal("sorting must not disturb the primary representation")
	}
	// Memoized: same instance returned.
	if e.SortedBy(0) != byX {
		t.Fatal("sorted representation should be memoized")
	}
	if e.SizeBytes() <= ext.SizeBytes() {
		t.Fatal("alternative representations must be accounted in size")
	}
}
