package cache

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/subsume"
)

// This file is the Query Planner/Optimizer (Figure 5) and the Execution
// Monitor. Planning follows the paper's three steps (Section 5.3):
//
//  1. determine the query to be evaluated (possibly a generalization of the
//     IE-query, prefetching extra data for predicted future instances);
//  2. determine the relevant cache elements via subsumption;
//  3. generate a plan: a partially ordered set of subqueries split between
//     the Cache Manager and the remote DBMS, executed in parallel when
//     possible.

// Query implements bridge.Session.
func (s *Session) Query(q *caql.Query) (*bridge.Stream, error) {
	return s.QueryCtx(context.Background(), q)
}

// QueryCtx implements bridge.Session. It is the single dispatch point for a
// query: admission control, the default per-query deadline, panic isolation,
// and outcome classification all live here, so the conservation invariant
// (Queries = Completed + Canceled + DeadlineExceeded + Shed + Failed) holds
// by construction — every counted query flows through exactly one
// ClassifyOutcome call.
func (s *Session) QueryCtx(ctx context.Context, q *caql.Query) (stream *bridge.Stream, err error) {
	if verr := q.Validate(); verr != nil {
		return nil, verr // malformed, never dispatched: not a counted query
	}
	c := s.cms
	c.stats.Queries.Add(1)
	// Root span of the query's trace: every stage span below (parse happens in
	// QueryTextCtx, before dispatch) and the engine's remote spans hang off it.
	ctx, sp := c.tracer.Start(ctx, "cms.query")
	sp.Set("query", q.Name())
	var lat0 time.Time
	if c.queryLat != nil {
		lat0 = time.Now()
	}
	defer func() {
		if r := recover(); r != nil {
			// Panic isolation: a panic while planning or executing one query
			// fails that query on that session; the CMS and every other
			// session keep running.
			c.stats.PanicsRecovered.Add(1)
			stream = nil
			err = fmt.Errorf("cache: query %s panicked: %v", q.Name(), r)
		}
		err = liftCtxErr(err)
		c.stats.ClassifyOutcome(err)
		if err != nil {
			sp.Set("error", err.Error())
		}
		sp.End()
		if !lat0.IsZero() {
			c.queryLat.Observe(time.Since(lat0).Microseconds())
		}
	}()
	if err = bridge.CtxError(ctx); err != nil {
		return nil, err
	}
	if serr := s.ctx.Err(); serr != nil {
		return nil, fmt.Errorf("%w: session ended: %w", bridge.ErrCanceled, serr)
	}
	if c.adm != nil {
		var release func()
		if release, err = c.adm.acquire(ctx, &c.stats); err != nil {
			return nil, err
		}
		defer release()
	} else {
		c.stats.Admitted.Add(1)
	}
	// Default deadline: applied only when the caller brought none. The
	// derived context dies when this call returns, so it governs eager work
	// only; lazy streams watch the caller's context (see streamCheck).
	qctx := ctx
	if c.opts.QueryTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			qctx, cancel = context.WithTimeout(ctx, c.opts.QueryTimeout)
			defer cancel()
		}
	}
	s.callerCtx = ctx
	return s.dispatch(qctx, q)
}

// liftCtxErr maps raw context errors surfacing from deep layers (socket
// reads, retry loops) into the bridge's typed vocabulary, so callers match
// one error family no matter where the cancellation bit.
func liftCtxErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, bridge.ErrCanceled), errors.Is(err, bridge.ErrDeadlineExceeded):
		return err
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", bridge.ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", bridge.ErrCanceled, err)
	default:
		return err
	}
}

// streamCheck is the cancellation checkpoint lazy streams poll between tuple
// batches. It watches the caller's context and the session's lifetime
// context — deliberately NOT the derived per-query deadline context, which is
// canceled when QueryCtx returns while a lazy stream is consumed after.
func (s *Session) streamCheck() func() error {
	caller, sctx := s.callerCtx, s.ctx
	return func() error {
		if err := bridge.CtxError(caller); err != nil {
			return err
		}
		if err := sctx.Err(); err != nil {
			return fmt.Errorf("%w: session ended: %w", bridge.ErrCanceled, err)
		}
		return nil
	}
}

// dispatch is the admitted query path: think-time accounting, prefetch
// bookkeeping, and the three planning steps.
func (s *Session) dispatch(ctx context.Context, q *caql.Query) (*bridge.Stream, error) {
	c := s.cms
	if s.queries > 0 {
		// IE think time between queries: the session clock advances but it
		// is not response time; prefetches issued earlier overlap with it.
		s.simNow += c.opts.ThinkTimeMS
	}
	s.queries++
	// Prefetches issued after the previous query ran during the think time
	// that just elapsed; wait them in, then publish the ones whose simulated
	// in-flight period has passed so other sessions can see them too.
	s.waitPrefetches()
	s.publishReady()

	name := q.Name()
	var vs *advice.ViewSpec
	if s.adv != nil {
		vs = s.adv.ViewByName(name)
	}
	if s.tracker != nil {
		s.tracker.Observe(name)
	}

	stream, err := s.answer(ctx, q, vs)
	if err != nil {
		return nil, err
	}
	if c.opts.Features.Prefetch && s.adv != nil && s.adv.Path != nil && c.rdi.Available() {
		// Prefetching is suppressed while degraded: speculative remote work
		// would only burn the breaker's half-open probes.
		_, psp := c.tracer.Start(ctx, "cms.prefetch_enqueue")
		s.prefetchFollowers(q, vs)
		psp.End()
	}
	return stream, nil
}

// answer runs the three planning steps for one query.
func (s *Session) answer(ctx context.Context, q *caql.Query, vs *advice.ViewSpec) (*bridge.Stream, error) {
	if err := bridge.CtxError(ctx); err != nil {
		return nil, err
	}
	c := s.cms
	f := c.opts.Features
	// Degraded mode (remote unavailable): cache-derived answers still work
	// and are counted as DegradedHits; eager remote work (generalization) is
	// skipped; the mandatory remote paths fail fast in the client.
	degraded := !c.rdi.Available()

	stale := s.staleChecker(degraded)

	// Step 2a: exact-match result cache ([IOAN88]-style reuse, subsumed by
	// full subsumption but cheaper: a single map lookup).
	if f.ExactMatch && f.ResultCaching {
		_, probe := c.tracer.Start(ctx, "cms.cache_probe")
		if e := c.mgr.ExactMatchFor(q, s.id); e != nil && !stale(e) {
			if d, ok := subsume.DeriveFull(e.Def, q); ok {
				probe.Set("hit", "exact")
				probe.End()
				c.stats.CacheHits.Add(1)
				c.stats.ExactHits.Add(1)
				if e.prefetched {
					c.stats.PrefetchHits.Add(1)
				}
				if degraded {
					c.stats.DegradedHits.Add(1)
				}
				return s.serveFromElement(e, d, q, vs)
			}
		}
		probe.Set("hit", "miss")
		probe.End()
	}

	// Step 2b: full derivation from a single cache element via subsumption.
	if f.Subsumption {
		_, sub := c.tracer.Start(ctx, "cms.subsume")
		var bestE *Element
		var bestD *subsume.Derivation
		for _, e := range c.mgr.CandidatesForSession(q, s.id) {
			// Subsumption matching over a large candidate set is the one CPU
			// loop on the planning path: checkpoint it so a canceled query
			// stops burning cycles.
			if err := bridge.CtxError(ctx); err != nil {
				sub.End()
				return nil, err
			}
			if stale(e) {
				continue
			}
			d, ok := subsume.DeriveFull(e.Def, q)
			if !ok {
				continue
			}
			if bestE == nil || e.SizeBytes() < bestE.SizeBytes() {
				bestE, bestD = e, d
			}
		}
		sub.Set("hit", fmt.Sprint(bestE != nil))
		sub.End()
		if bestE != nil {
			c.stats.CacheHits.Add(1)
			if bestE.prefetched {
				c.stats.PrefetchHits.Add(1)
			}
			if degraded {
				c.stats.DegradedHits.Add(1)
			}
			return s.serveFromElement(bestE, bestD, q, vs)
		}
	}

	// Step 1: consider generalizing the query before remote execution, when
	// either the path expression predicts further instances of this view or
	// the session has already seen a sibling instance (frequency fallback
	// for sessions without usable advice).
	if f.Generalization && !degraded && (s.predictsReuse(q.Name()) || s.repeatedInstance(q)) {
		if gq := s.generalizationOf(q, vs); gq != nil {
			gctx, gsp := c.tracer.Start(ctx, "cms.generalize")
			ext, sim, err := c.rdi.FetchCtx(gctx, gq)
			gsp.End()
			if err == nil {
				s.advance(sim)
				e := s.cacheResult(gq, ext, vs)
				if d, ok := subsume.DeriveFull(gq, q); ok {
					c.stats.Generalizations.Add(1)
					return s.serveFromElement(e, d, q, vs)
				}
			} else if cerr := bridge.CtxError(ctx); cerr != nil {
				// The caller is gone: abort instead of falling through to
				// another doomed remote attempt.
				return nil, cerr
			}
			// On any other failure fall through to the normal paths.
		}
	}

	// Step 2c/3: decomposition — cover what we can from the cache, fetch the
	// residue remotely, join locally (in parallel when enabled).
	if f.Subsumption {
		dctx, dsp := c.tracer.Start(ctx, "cms.decompose")
		stream, handled, err := s.answerDecomposed(dctx, q, vs)
		dsp.Set("handled", fmt.Sprint(handled))
		dsp.End()
		if handled || err != nil {
			return stream, err
		}
	}

	// Fallback: the whole query goes to the remote DBMS. When the transport
	// can stream and the result will not be cached (a cached result must be
	// materialized anyway), the answer is handed to the IE as a lazy remote
	// stream: the first tuple is available after one wire frame instead of
	// after the whole transfer, and an abandoned consumer cancels the remote
	// producer mid-flight.
	if f.Lazy && c.rdi.StreamCapable() && !s.shouldCache(vs) {
		return s.answerRemoteStream(q)
	}
	ext, sim, err := c.rdi.FetchCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	s.advance(sim)
	if s.shouldCache(vs) {
		s.cacheResult(q, ext, vs)
	}
	return bridge.NewEagerStream(ext), nil
}

// answerRemoteStream serves a remote-only query lazily over the streamed
// transport. The stream is established under the session's *caller* context —
// not the per-query deadline context, which dies when QueryCtx returns while
// the stream is still being consumed (same rule as streamCheck). The fixed
// round-trip cost is charged at establishment; each shipped tuple is charged
// as the consumer pulls it on the session thread, mirroring how cache-local
// lazy answers charge per tuple produced.
func (s *Session) answerRemoteStream(q *caql.Query) (*bridge.Stream, error) {
	c := s.cms
	fs, err := c.rdi.FetchStreamCtx(s.callerCtx, q)
	if err != nil {
		return nil, err
	}
	s.advance(c.opts.Costs.PerRequest)
	per := c.opts.Costs.PerTuple
	src := chargeIter(fs, func(n int) { s.advance(per * float64(n)) })
	guard := relation.NewGuardIterator(src, relation.DefaultGuardEvery, s.streamCheck())
	c.stats.LazyAnswers.Add(1)
	return bridge.NewStream(fs.Schema(), &remoteStreamIter{guard: guard, fs: fs}, true), nil
}

// remoteStreamIter splices cooperative cancellation (the guard, polling the
// caller/session contexts) with the remote stream's own termination status:
// whichever side stops the stream, the consumer sees a typed error from
// bridge.Stream.Err, and a guard trip tears down the remote producer so the
// server stops shipping frames nobody reads.
type remoteStreamIter struct {
	guard *relation.GuardIterator
	fs    *FetchStream
}

// Next implements relation.Iterator.
func (r *remoteStreamIter) Next() (relation.Tuple, bool) {
	t, ok := r.guard.Next()
	if !ok && r.guard.Err() != nil {
		r.fs.Close()
	}
	return t, ok
}

// Err implements the bridge's error convention, preferring the guard's typed
// verdict and lifting transport-level context errors into the bridge family.
func (r *remoteStreamIter) Err() error {
	if err := r.guard.Err(); err != nil {
		return err
	}
	return liftCtxErr(r.fs.Err())
}

// serveFromElement answers q from a cached element through a derivation,
// choosing lazy (generator) or eager representation per advice (Section
// 5.3.3's guideline: strict producers evaluate lazily; consumer-annotated
// queries evaluate eagerly with indexes).
func (s *Session) serveFromElement(e *Element, d *subsume.Derivation, q *caql.Query, vs *advice.ViewSpec) (*bridge.Stream, error) {
	c := s.cms
	c.mgr.Touch(e)
	if rem := s.readyRemainder(e); rem > 0 {
		// Own prefetched data still in flight: wait out the remainder. (Other
		// sessions never see an in-flight element; visibility is gated on
		// the owner's clock passing readyAtSim.)
		s.advance(rem)
	}
	schema, err := q.OutputSchema(c.rdi)
	if err != nil {
		// Element-backed queries can involve piece relations unknown to the
		// remote catalog; fall back to the element-derived schema.
		schema = derivedSchema(q, d, e)
	}

	lazy := c.opts.Features.Lazy && vs != nil && vs.StrictProducer()
	if lazy {
		per := c.opts.Costs.PerLocalOp
		src := chargeIter(e.Iter(), func(n int) { s.advanceLocal(per * float64(n)) })
		c.stats.LazyAnswers.Add(1)
		// Cooperative cancellation: the generator polls the caller/session
		// contexts every DefaultGuardEvery tuples. A tripped guard ends the
		// stream AND records a typed error on it — consumers that check
		// Stream.Err (or use DrainErr) can never mistake cancellation for a
		// complete, merely short, result.
		it := relation.NewGuardIterator(d.ApplyLazy(src), relation.DefaultGuardEvery, s.streamCheck())
		return bridge.NewStream(schema, it, true), nil
	}

	it, ops := s.derivedIter(e, d, vs)
	out := relation.Drain(q.Name(), schema, it)
	s.advanceLocal(c.opts.Costs.PerLocalOp * float64(ops+out.Len()))
	return bridge.NewEagerStream(out), nil
}

// derivedIter builds the tuple pipeline for a derivation, using an attribute
// index for an equality selection when available (or worth building), and
// returns the estimated number of local tuple operations.
func (s *Session) derivedIter(e *Element, d *subsume.Derivation, vs *advice.ViewSpec) (relation.Iterator, int) {
	c := s.cms
	if c.opts.Features.Indexing && !d.Empty {
		for i, cond := range d.Candidate.Conds {
			if cond.Right >= 0 || cond.Op != relation.OpEq {
				continue
			}
			ix, built := e.indexBuilt(cond.Left, s.shouldIndex(e, cond.Left))
			if built {
				c.stats.IndexBuilds.Add(1)
			}
			if ix != nil {
				rows := ix.Lookup([]relation.Value{cond.Const})
				rest := append(append([]relation.Cond(nil), d.Candidate.Conds[:i]...), d.Candidate.Conds[i+1:]...)
				cand := *d.Candidate
				cand.Conds = rest
				d2 := *d
				d2.Candidate = &cand
				return d2.ApplyLazy(relation.NewSliceIterator(rows)), len(rows)
			}
			e.noteSelection(cond.Left)
		}
	}
	ext := e.Extension()
	return d.ApplyLazy(ext.Iter()), ext.Len()
}

// shouldIndex decides whether to build an index on the element column:
// consumer-annotated columns are prime candidates (Section 4.2.1); other
// columns earn an index after repeated equality selections. The IndexBuilds
// stat is counted where the build actually happens (indexBuilt), so two
// sessions racing to index the same column count one build.
func (s *Session) shouldIndex(e *Element, col int) bool {
	if e.hasIndex(col) {
		return true
	}
	if !e.Materialized() {
		return false
	}
	if e.AdviceName != "" && s.adv != nil {
		if vs := s.adv.ViewByName(e.AdviceName); vs != nil {
			for _, cc := range vs.ConsumerCols() {
				if cc == col {
					return true
				}
			}
		}
	}
	return e.selCount(col) >= 2
}

// generalizationOf widens the IE-query at its consumer-bound constant
// positions (all constant head positions when no view spec applies),
// returning nil when nothing would change.
func (s *Session) generalizationOf(q *caql.Query, vs *advice.ViewSpec) *caql.Query {
	var positions []int
	if vs != nil {
		for _, i := range vs.ConsumerCols() {
			if i < len(q.Head.Args) && q.Head.Args[i].IsConst() {
				positions = append(positions, i)
			}
		}
	} else {
		for i, t := range q.Head.Args {
			if t.IsConst() {
				positions = append(positions, i)
			}
		}
	}
	if len(positions) == 0 {
		return nil
	}
	gq := caql.Generalize(q, positions)
	if gq.Canonical() == q.Canonical() {
		return nil
	}
	return gq
}

// repeatedInstance records the query's fully-generalized canonical form and
// reports whether a sibling instance was seen before in this session — the
// signal that paying for the general fetch will amortize.
func (s *Session) repeatedInstance(q *caql.Query) bool {
	var positions []int
	for i, t := range q.Head.Args {
		if t.IsConst() {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return false
	}
	key := caql.Generalize(q, positions).Canonical()
	s.genSeen[key]++
	return s.genSeen[key] >= 2
}

// predictsReuse reports whether the path expression predicts another query
// against the same view within the horizon.
func (s *Session) predictsReuse(name string) bool {
	if s.tracker == nil || s.tracker.Lost() {
		return false
	}
	_, ok := s.tracker.PredictWithin(s.cms.opts.PredictHorizon)[name]
	return ok
}

// staleChecker returns the stale-epoch predicate for one planning pass: some
// fetch has observed the backend at the RDI's epoch high-water mark, so any
// view built under an older epoch describes a state the server has provably
// moved past. A stale view is invalidated (removed + counted) and the caller
// falls through to a refetch instead of serving it. While degraded, cached
// answers are served regardless of epoch — stale data beats no data, and the
// breaker already accounts those answers as DegradedHits.
func (s *Session) staleChecker(degraded bool) func(*Element) bool {
	c := s.cms
	var remoteEpoch uint64
	if !degraded {
		remoteEpoch = c.rdi.ObservedEpoch()
	}
	return func(e *Element) bool {
		if remoteEpoch == 0 || e.builtEpoch == 0 || e.builtEpoch >= remoteEpoch {
			return false
		}
		c.mgr.Remove(e)
		c.stats.EpochInvalidations.Add(1)
		return true
	}
}

// shouldCache decides result caching: strict-producer views with no
// predicted reuse are not cached (Section 4.2.1: the CMS "may also choose
// not to cache the relation if there are no other predicted requests").
func (s *Session) shouldCache(vs *advice.ViewSpec) bool {
	if !s.cms.opts.Features.ResultCaching {
		return false
	}
	if vs != nil && vs.StrictProducer() && s.tracker != nil && !s.predictsReuse(vs.Name()) {
		return false
	}
	return true
}

// cacheResult stores (budget permitting) and returns an element holding a
// demand-fetched query result. (Prefetched elements are built by the worker
// pool in prefetch.go, which also sets their visibility gate.)
func (s *Session) cacheResult(def *caql.Query, ext *relation.Relation, vs *advice.ViewSpec) *Element {
	c := s.cms
	e := newExtensionElement(c.mgr.NewElementID(), def.Clone(), ext)
	if vs != nil {
		e.AdviceName = vs.Name()
	}
	e.readyAtSim = s.simNow
	// The fetch that produced ext observed the backend at (at least) the
	// RDI's current epoch high-water mark; stamping it here (never newer than
	// the data) is what later staleness comparisons are made against.
	e.builtEpoch = c.rdi.ObservedEpoch()
	if c.opts.Features.ResultCaching {
		c.mgr.Insert(e)
	}
	return e
}

// answerDecomposed implements step 3 for partially cache-answerable queries:
// greedy disjoint candidate covers become local pieces, the residue is
// shipped to the remote DBMS as one conjunctive subquery, and the final join
// runs locally. handled is false when no cache element covers anything.
func (s *Session) answerDecomposed(ctx context.Context, q *caql.Query, vs *advice.ViewSpec) (*bridge.Stream, bool, error) {
	c := s.cms
	needed := neededVars(q)

	type pick struct {
		e    *Element
		cand *subsume.Candidate
	}
	covered := make([]bool, len(q.Rels))
	cmpCovered := make([]bool, len(q.Cmps))
	var picks []pick
	stale := s.staleChecker(!c.rdi.Available())
	for _, e := range c.mgr.CandidatesForSession(q, s.id) {
		if err := bridge.CtxError(ctx); err != nil {
			return nil, true, err
		}
		if stale(e) {
			continue
		}
		if !e.Materialized() && s.readyRemainder(e) > 0 {
			continue
		}
		for _, cand := range subsume.Match(e.Def, q, needed) {
			if overlapsCover(cand.Cover, covered) {
				continue
			}
			picks = append(picks, pick{e, cand})
			for _, i := range cand.Cover {
				covered[i] = true
			}
			for _, i := range cand.CoveredCmps {
				cmpCovered[i] = true
			}
			break
		}
	}
	if len(picks) == 0 {
		return nil, false, nil
	}

	var residualIdx []int
	for i, cov := range covered {
		if !cov {
			residualIdx = append(residualIdx, i)
		}
	}

	// Variables produced by the pieces.
	pieceVars := make(map[string]bool)
	for _, p := range picks {
		for _, v := range p.cand.InterfaceVars() {
			pieceVars[v] = true
		}
	}

	// Classify comparisons: shipped with the residual when fully inside it,
	// leftover when they span parts or were not covered.
	residualVarSet := make(map[string]bool)
	for _, i := range residualIdx {
		for _, t := range q.Rels[i].Args {
			if t.IsVar() {
				residualVarSet[t.Var] = true
			}
		}
	}
	var shippedCmps, leftoverCmps []logic.Atom
	for ci, cmp := range q.Cmps {
		if cmpCovered[ci] {
			continue
		}
		inResidual := len(residualIdx) > 0
		for _, t := range cmp.Args {
			if t.IsVar() && !residualVarSet[t.Var] {
				inResidual = false
			}
		}
		if inResidual {
			shippedCmps = append(shippedCmps, cmp)
		} else {
			leftoverCmps = append(leftoverCmps, cmp)
		}
	}

	// Assemble the plan: local piece materialization and the remote residual
	// fetch, run in parallel when enabled (Section 5: "parallel execution of
	// subqueries on both the CMS and the remote DBMS").
	overlay := caql.MapSource{}
	var atoms []logic.Atom
	var localDur, remoteDur float64

	localWork := func() error {
		var ops int
		for i, p := range picks {
			name := fmt.Sprintf("__p%d", i)
			c.mgr.Touch(p.e)
			localDur += s.readyRemainder(p.e)
			ext := p.e.Extension()
			piece := p.cand.Materialize(name, ext)
			overlay[name] = piece
			atoms = append(atoms, p.cand.PieceAtom(name))
			ops += ext.Len() + piece.Len()
		}
		localDur += c.opts.Costs.PerLocalOp * float64(ops)
		return nil
	}

	var residualExt *relation.Relation
	var rq *caql.Query
	remoteWork := func() error {
		if len(residualIdx) == 0 {
			return nil
		}
		// Export set: residual variables needed by the head, the pieces, or
		// leftover comparisons.
		export := make(map[string]bool)
		for v := range residualVarSet {
			if neededForJoin(v, q, pieceVars, leftoverCmps) {
				export[v] = true
			}
		}
		var exportList []string
		for v := range export {
			exportList = append(exportList, v)
		}
		sort.Strings(exportList)
		var head []logic.Term
		for _, v := range exportList {
			head = append(head, logic.V(v))
		}
		existenceTest := len(head) == 0
		if existenceTest {
			// The residual shares nothing with the rest of the query: it is
			// a pure existence test (e.g. a fully ground atom). Ship it with
			// a constant head; a non-empty (deduplicated) result keeps the
			// local join unchanged, an empty one annihilates it.
			head = []logic.Term{logic.CInt(1)}
		}
		var rAtoms []logic.Atom
		for _, i := range residualIdx {
			rAtoms = append(rAtoms, q.Rels[i])
		}
		rAtoms = append(rAtoms, shippedCmps...)
		rq = caql.NewQuery(logic.A("__r", head...), rAtoms)
		ext, sim, err := c.rdi.FetchCtx(ctx, rq)
		if err != nil {
			return err
		}
		if existenceTest {
			ext = relation.DistinctRel(ext)
		}
		remoteDur = sim
		residualExt = ext
		return nil
	}

	var err error
	if c.opts.Features.Parallel && len(residualIdx) > 0 {
		done := make(chan error, 1)
		go func() { done <- remoteWork() }()
		lerr := localWork()
		rerr := <-done
		if lerr != nil {
			err = lerr
		} else {
			err = rerr
		}
		s.advance(maxF(localDur, remoteDur))
	} else {
		if err = localWork(); err == nil {
			err = remoteWork()
		}
		s.advance(localDur + remoteDur)
	}
	if err != nil {
		return nil, true, err
	}

	if residualExt != nil {
		overlay["__r"] = residualExt
		atoms = append(atoms, rq.Head)
		if s.cms.opts.Features.ResultCaching {
			// The residual result is itself reusable.
			s.cacheResult(rq, residualExt, nil)
		}
	}

	atoms = append(atoms, leftoverCmps...)
	rew := caql.NewQuery(q.Head, atoms)
	out, err := caql.Eval(rew, overlay)
	if err != nil {
		return nil, true, err
	}
	var inputs int
	for _, rel := range overlay {
		inputs += rel.Len()
	}
	s.advanceLocal(c.opts.Costs.PerLocalOp * float64(inputs+out.Len()))

	if len(residualIdx) == 0 {
		c.stats.CacheHits.Add(1)
		if !c.rdi.Available() {
			c.stats.DegradedHits.Add(1)
		}
	} else {
		c.stats.PartialHits.Add(1)
	}
	if s.shouldCache(vs) {
		s.cacheResult(q, out, vs)
	}
	return bridge.NewEagerStream(out), true, nil
}

// prefetchFollowers plans predicted follow-up queries after answering q: the
// items following q's view in its sequence grouping are "likely to be
// evaluated when the first item is evaluated" (Section 5.3.1). Consumer
// arguments are instantiated from the current query's constants; followers
// with unresolved consumers are skipped. The selected fetches are handed to
// the asynchronous worker pool (prefetch.go) so they overlap the IE's think
// time in wall-clock terms, not just on the simulated clock.
func (s *Session) prefetchFollowers(q *caql.Query, vs *advice.ViewSpec) {
	if vs == nil {
		return
	}
	c := s.cms
	binds := map[string]relation.Value{}
	for _, i := range vs.ConsumerCols() {
		if i < len(q.Head.Args) && vs.Query.Head.Args[i].IsVar() && q.Head.Args[i].IsConst() {
			binds[vs.Query.Head.Args[i].Var] = q.Head.Args[i].Const
		}
	}
	for _, fname := range advice.SequenceFollowers(s.adv.Path, q.Name()) {
		fvs := s.adv.ViewByName(fname)
		if fvs == nil {
			continue
		}
		pq := fvs.Query.Instantiate(binds)
		unresolved := false
		for _, i := range fvs.ConsumerCols() {
			if i < len(pq.Head.Args) && pq.Head.Args[i].IsVar() {
				unresolved = true
			}
		}
		if unresolved {
			continue
		}
		if c.opts.Features.ResultCaching && c.mgr.ExactMatchFor(pq, s.id) != nil {
			continue
		}
		if c.opts.Features.Subsumption && s.derivableFromCache(pq) {
			continue
		}
		s.enqueuePrefetch(pq, fvs)
	}
}

func (s *Session) derivableFromCache(q *caql.Query) bool {
	for _, e := range s.cms.mgr.CandidatesForSession(q, s.id) {
		if _, ok := subsume.DeriveFull(e.Def, q); ok {
			return true
		}
	}
	return false
}

// neededVars is the conservative variable set the decomposition must be able
// to recover from covered pieces: head variables, comparison variables, and
// join variables (those in two or more relational atoms).
func neededVars(q *caql.Query) map[string]bool {
	needed := make(map[string]bool)
	for _, t := range q.Head.Args {
		if t.IsVar() {
			needed[t.Var] = true
		}
	}
	for _, cmp := range q.Cmps {
		for _, t := range cmp.Args {
			if t.IsVar() {
				needed[t.Var] = true
			}
		}
	}
	counts := make(map[string]int)
	for _, a := range q.Rels {
		seen := make(map[string]bool)
		for _, t := range a.Args {
			if t.IsVar() && !seen[t.Var] {
				seen[t.Var] = true
				counts[t.Var]++
			}
		}
	}
	for v, n := range counts {
		if n >= 2 {
			needed[v] = true
		}
	}
	return needed
}

func neededForJoin(v string, q *caql.Query, pieceVars map[string]bool, leftoverCmps []logic.Atom) bool {
	for _, t := range q.Head.Args {
		if t.IsVar() && t.Var == v {
			return true
		}
	}
	if pieceVars[v] {
		return true
	}
	for _, cmp := range leftoverCmps {
		for _, t := range cmp.Args {
			if t.IsVar() && t.Var == v {
				return true
			}
		}
	}
	return false
}

func overlapsCover(cover []int, covered []bool) bool {
	for _, i := range cover {
		if covered[i] {
			return true
		}
	}
	return false
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// chargeIter charges a cost callback per tuple pulled from the iterator.
func chargeIter(it relation.Iterator, charge func(n int)) relation.Iterator {
	return relation.IteratorFunc(func() (relation.Tuple, bool) {
		t, ok := it.Next()
		if ok {
			charge(1)
		}
		return t, ok
	})
}

// derivedSchema builds a fallback output schema for q from the element's
// column kinds through the derivation.
func derivedSchema(q *caql.Query, d *subsume.Derivation, e *Element) *relation.Schema {
	attrs := make([]relation.Attr, len(d.OutCols))
	used := make(map[string]bool)
	for i, col := range d.OutCols {
		var name string
		var kind relation.Kind
		if col < 0 {
			name = fmt.Sprintf("c%d", i)
			kind = d.Consts[i].Kind()
		} else {
			name = e.Schema().Attr(col).Name
			kind = e.Schema().Attr(col).Kind
			if t := q.Head.Args[i]; t.IsVar() {
				name = t.Var
			}
		}
		for used[name] {
			name += "_"
		}
		used[name] = true
		attrs[i] = relation.Attr{Name: name, Kind: kind}
	}
	return relation.NewSchema(attrs...)
}
