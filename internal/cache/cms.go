package cache

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// Features toggles the CMS's optimization techniques. Every feature has a
// sound fallback, so any subset is valid — the experiment suite ablates them
// individually (Figure 2 of the paper maps techniques to the aspects of the
// impedance mismatch they alleviate).
type Features struct {
	// Subsumption enables reuse of cached views via subsumption and query
	// decomposition (Section 5.3.2). Without it only exact result matches
	// are reused.
	Subsumption bool
	// ExactMatch enables exact-match result-cache lookups.
	ExactMatch bool
	// ResultCaching stores query results as cache elements at all.
	ResultCaching bool
	// Generalization widens consumer-bound queries before remote execution
	// (Section 5.3.1 step 1).
	Generalization bool
	// Prefetch issues predicted queries ahead of demand using the path
	// expression (Section 4.2.2 / 5.3.1).
	Prefetch bool
	// Lazy answers cache-only queries with generators (Section 5.1).
	Lazy bool
	// Indexing builds attribute indexes on consumer-annotated columns
	// (Section 4.2.1).
	Indexing bool
	// Parallel overlaps cache-local and remote subquery execution
	// (Section 5, feature (e)).
	Parallel bool
	// AdviceReplacement protects predicted-soon elements from LRU eviction.
	AdviceReplacement bool
}

// AllFeatures enables everything (the full BrAID configuration).
func AllFeatures() Features {
	return Features{
		Subsumption:       true,
		ExactMatch:        true,
		ResultCaching:     true,
		Generalization:    true,
		Prefetch:          true,
		Lazy:              true,
		Indexing:          true,
		Parallel:          true,
		AdviceReplacement: true,
	}
}

// Options configures a CMS instance.
type Options struct {
	Features Features
	// CacheBytes bounds the cache footprint (<= 0: unbounded).
	CacheBytes int64
	// Costs is the virtual cost model shared with the remote client.
	Costs remotedb.Costs
	// ThinkTimeMS is the simulated IE think time between consecutive queries
	// of a session; prefetches overlap with it.
	ThinkTimeMS float64
	// PredictHorizon is how many queries ahead advice-based predictions
	// look (replacement protection, reuse prediction). Default 8.
	PredictHorizon int
	// PrefetchWorkers bounds the asynchronous prefetch pool shared by every
	// session of this CMS. Default 4.
	PrefetchWorkers int
	// QueryTimeout is the default per-query deadline applied when the caller's
	// context carries none (0: no default deadline). A query that exceeds it
	// fails with bridge.ErrDeadlineExceeded.
	QueryTimeout time.Duration
	// MaxInflight bounds concurrently executing queries across all sessions
	// (admission control). Excess queries wait in a bounded queue; when that
	// is also full they are shed with bridge.ErrOverloaded (0: unbounded).
	MaxInflight int
	// MaxQueue bounds the admission wait queue (<= 0: 2x MaxInflight).
	// Ignored unless MaxInflight > 0.
	MaxQueue int
	// Tracer, when non-nil, records spans for each query's lifecycle stages
	// (parse, cache probe, subsumption, generalization, decomposition, remote
	// fetch). Trace IDs propagate to the remote engine over the v2 wire, so a
	// remote-miss query yields one trace spanning both tiers.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives the CMS and remote-client counters as
	// read-through metrics (braid_cms_* / braid_pool_* namespaces) plus an
	// owned end-to-end query latency histogram.
	Metrics *obs.Registry
}

// CMS is the Cache Management System. It implements bridge.DataSource and is
// safe for concurrent use by many sessions: the cache manager is sharded, the
// stats are atomic counters, and prefetches run on a bounded worker pool.
type CMS struct {
	opts Options
	rdi  *RDI
	mgr  *Manager
	pf   *prefetchPool
	adm  *admission // nil when admission control is disabled

	// tracer and queryLat are nil when observability is not configured; every
	// use is nil-safe, so the hot path pays nothing.
	tracer   *obs.Tracer
	queryLat *obs.Histogram

	nextSID atomic.Int64
	stats   bridge.StatsCounters
}

var _ bridge.DataSource = (*CMS)(nil)

// New builds a CMS over a remote client.
func New(client remotedb.Client, opts Options) *CMS {
	if opts.PredictHorizon <= 0 {
		opts.PredictHorizon = 8
	}
	if opts.PrefetchWorkers <= 0 {
		opts.PrefetchWorkers = 4
	}
	c := &CMS{
		opts:   opts,
		rdi:    NewRDI(client),
		mgr:    NewManager(opts.CacheBytes),
		pf:     newPrefetchPool(opts.PrefetchWorkers),
		adm:    newAdmission(opts.MaxInflight, opts.MaxQueue),
		tracer: opts.Tracer,
	}
	c.rdi.tracer = opts.Tracer
	if opts.Metrics != nil {
		c.registerMetrics(opts.Metrics)
	}
	return c
}

// registerMetrics exposes the CMS's scattered atomic counters through one
// registry. Everything is read-through — the counters stay authoritative and
// are sampled at scrape time, so registration adds no hot-path accounting.
func (c *CMS) registerMetrics(reg *obs.Registry) {
	st := &c.stats
	reg.CounterFunc("braid_cms_queries_total", "CAQL queries dispatched.", st.Queries.Load)
	reg.CounterFunc("braid_cms_cache_hits_total", "Queries answered entirely from the cache.", st.CacheHits.Load)
	reg.CounterFunc("braid_cms_exact_hits_total", "Full hits that were exact result-cache matches.", st.ExactHits.Load)
	reg.CounterFunc("braid_cms_partial_hits_total", "Queries partially answered from the cache.", st.PartialHits.Load)
	reg.CounterFunc("braid_cms_prefetches_total", "Prefetch requests issued.", st.Prefetches.Load)
	reg.CounterFunc("braid_cms_prefetch_hits_total", "Queries answered by previously prefetched data.", st.PrefetchHits.Load)
	reg.CounterFunc("braid_cms_prefetch_drops_total", "Prefetch requests dropped at a saturated worker pool.", st.PrefetchDrops.Load)
	reg.CounterFunc("braid_cms_generalizations_total", "Queries widened before remote execution.", st.Generalizations.Load)
	reg.CounterFunc("braid_cms_lazy_answers_total", "Queries answered with a generator (lazy).", st.LazyAnswers.Load)
	reg.CounterFunc("braid_cms_index_builds_total", "Attribute indexes built on cached extensions.", st.IndexBuilds.Load)
	reg.CounterFunc("braid_cms_degraded_hits_total", "Cache hits served while the remote was unavailable.", st.DegradedHits.Load)
	reg.CounterFunc("braid_cms_epoch_invalidations_total", "Cached views invalidated after a fetch observed a newer backend catalog epoch.", st.EpochInvalidations.Load)
	reg.GaugeFunc("braid_cms_observed_epoch", "Highest backend catalog epoch observed on any fetch.", func() float64 { return float64(c.rdi.ObservedEpoch()) })
	reg.CounterFunc("braid_cms_admitted_total", "Queries past the admission controller.", st.Admitted.Load)
	reg.CounterFunc("braid_cms_queued_total", "Admitted queries that waited in the bounded queue.", st.Queued.Load)
	reg.CounterFunc("braid_cms_shed_total", "Queries rejected with ErrOverloaded.", st.Shed.Load)
	reg.CounterFunc("braid_cms_canceled_total", "Queries aborted by caller cancellation.", st.Canceled.Load)
	reg.CounterFunc("braid_cms_deadline_exceeded_total", "Queries aborted by a deadline.", st.DeadlineExceeded.Load)
	reg.CounterFunc("braid_cms_completed_total", "Queries that returned a stream.", st.Completed.Load)
	reg.CounterFunc("braid_cms_failed_total", "Queries that failed for any other reason.", st.Failed.Load)
	reg.CounterFunc("braid_cms_panics_recovered_total", "Panics isolated to one query or prefetch.", st.PanicsRecovered.Load)
	reg.CounterFunc("braid_cms_evictions_total", "Cache elements evicted.", c.mgr.Evictions)
	reg.GaugeFunc("braid_cms_cache_hit_rate", "Fraction of dispatched queries answered fully from the cache.", func() float64 {
		q := st.Queries.Load()
		if q == 0 {
			return 0
		}
		return float64(st.CacheHits.Load()) / float64(q)
	})
	reg.CounterFunc("braid_pool_requests_total", "Requests issued to the remote DBMS.", func() int64 { return c.rdi.Stats().Requests })
	reg.CounterFunc("braid_pool_tuples_total", "Tuples shipped from the remote DBMS.", func() int64 { return c.rdi.Stats().TuplesReturned })
	reg.CounterFunc("braid_pool_frames_sent_total", "Wire v2 frames written to the remote DBMS.", func() int64 { return c.rdi.Stats().FramesSent })
	reg.CounterFunc("braid_pool_frames_recv_total", "Wire v2 frames received from the remote DBMS.", func() int64 { return c.rdi.Stats().FramesRecv })
	reg.CounterFunc("braid_pool_streams_total", "Streamed exec results opened.", func() int64 { return c.rdi.Stats().Streams })
	reg.CounterFunc("braid_pool_streams_canceled_total", "Remote streams torn down mid-flight.", func() int64 { return c.rdi.Stats().StreamsCanceled })
	reg.CounterFunc("braid_pool_health_probes_total", "Connection health probes sent.", func() int64 { return c.rdi.Stats().HealthProbes })
	reg.CounterFunc("braid_pool_probe_failures_total", "Health probes that found a dead connection.", func() int64 { return c.rdi.Stats().ProbeFailures })
	reg.CounterFunc("braid_pool_reconnects_total", "Pool connections re-dialed after death.", func() int64 { return c.rdi.Stats().Reconnects })
	c.queryLat = reg.Histogram("braid_cms_query_us", "End-to-end CAQL query latency, microseconds.")
}

// Manager exposes the cache manager (cache model introspection, tests).
func (c *CMS) Manager() *Manager { return c.mgr }

// RDI exposes the remote interface (stats, tests).
func (c *CMS) RDI() *RDI { return c.rdi }

// RelationSchema implements bridge.DataSource / caql.SchemaSource.
func (c *CMS) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return c.rdi.RelationSchema(name, arity)
}

// Stats implements bridge.DataSource, folding in the remote client's
// transfer counters.
func (c *CMS) Stats() bridge.SourceStats {
	st := c.stats.Snapshot()
	remote := c.rdi.Stats()
	st.RemoteRequests = remote.Requests
	st.RemoteTuples = remote.TuplesReturned
	st.RemoteSimMS = remote.SimMS
	st.FramesSent = remote.FramesSent
	st.FramesRecv = remote.FramesRecv
	st.RemoteStreams = remote.Streams
	st.StreamsCanceled = remote.StreamsCanceled
	if remote.Streams > 0 {
		st.FirstTupleMS = float64(remote.FirstTupleNS) / float64(remote.Streams) / 1e6
	}
	st.Evictions = c.mgr.Evictions()
	if rs, ok := c.rdi.Resilience(); ok {
		st.Retries = rs.Retries
		st.RemoteFailures = rs.Failures
		st.BreakerOpens = rs.BreakerOpens
		st.StreamResumes = rs.StreamResumes
	}
	return st
}

// Degraded reports whether the CMS is in cache-only degraded mode (the
// remote DBMS is unavailable). Cached and subsumable queries keep working;
// queries that need the remote fail fast with remotedb.ErrRemoteUnavailable.
func (c *CMS) Degraded() bool { return !c.rdi.Available() }

// BeginSession implements bridge.DataSource. A session accepts optional
// advice and then a sequence of CAQL queries (Section 3). Each session gets a
// unique ID; advice-driven replacement predictors are registered per session
// so concurrent sessions' advice compose (the eviction victim is the element
// no session predicts a near reuse for).
func (c *CMS) BeginSession(adv *advice.Advice) bridge.Session {
	s := &Session{
		cms:     c,
		id:      c.nextSID.Add(1),
		adv:     adv,
		genSeen: make(map[string]int),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if adv != nil && adv.Path != nil {
		s.tracker = advice.NewTracker(adv.Path)
	}
	if c.opts.Features.AdviceReplacement && s.tracker != nil {
		c.mgr.RegisterPredictor(s.id, func(e *Element) (int, bool) {
			if e.AdviceName == "" || s.tracker.Lost() {
				return 0, false
			}
			d, ok := s.tracker.PredictWithin(c.opts.PredictHorizon)[e.AdviceName]
			return d, ok
		})
	}
	return s
}

// Session is a CMS session. A session models a single IE's query sequence, so
// its own methods are not safe for concurrent use — but any number of
// sessions may run against one CMS concurrently; open one session per client.
type Session struct {
	cms     *CMS
	id      int64
	adv     *advice.Advice
	tracker *advice.Tracker

	// ctx is the session's lifetime context: End cancels it, which aborts the
	// session's in-flight prefetches and poisons its outstanding lazy streams.
	ctx    context.Context
	cancel context.CancelFunc
	// callerCtx is the context of the query currently being planned; lazy
	// streams capture it at creation (session methods are serial, so the
	// scratch field is safe — see the concurrency note above).
	callerCtx context.Context

	simNow  float64
	queries int64
	ended   bool

	// genSeen counts occurrences of each query's fully-generalized canonical
	// form; repeated instances trigger generalization even without a path
	// expression (frequency-based fallback).
	genSeen map[string]int
	// tcMemo memoizes per-session transitive closures (QueryFixpoint).
	tcMemo map[string]*relation.Relation

	// Async prefetch bookkeeping (prefetch.go): pfWG tracks in-flight
	// prefetch jobs, pmu guards the dedup set and the private (not yet
	// published) prefetched elements.
	pfWG     sync.WaitGroup
	pmu      sync.Mutex
	inflight map[string]bool
	private  []*Element
}

// SimNow returns the session's virtual clock (milliseconds).
func (s *Session) SimNow() float64 { return s.simNow }

// End implements bridge.Session. It cancels the session context first — so
// in-flight prefetch workers abort their remote calls instead of being waited
// out — then waits for those workers, publishes the private elements that did
// materialize (a departing session has no clock left to wait on), and
// withdraws its replacement predictor.
func (s *Session) End() {
	if s.ended {
		return
	}
	s.ended = true
	s.cancel()
	s.waitPrefetches()
	s.pmu.Lock()
	for _, e := range s.private {
		e.publish()
	}
	s.private = nil
	s.pmu.Unlock()
	s.cms.mgr.UnregisterPredictor(s.id)
}

// QueryText parses and answers a CAQL query.
func (s *Session) QueryText(src string) (*bridge.Stream, error) {
	return s.QueryTextCtx(context.Background(), src)
}

// QueryTextCtx parses and answers a CAQL query under a context.
func (s *Session) QueryTextCtx(ctx context.Context, src string) (*bridge.Stream, error) {
	_, psp := s.cms.tracer.Start(ctx, "cms.parse")
	q, err := caql.Parse(src)
	psp.End()
	if err != nil {
		return nil, err
	}
	return s.QueryCtx(ctx, q)
}

// advance moves the session clock by d simulated milliseconds and accounts
// it as response time.
func (s *Session) advance(d float64) {
	s.simNow += d
	s.cms.stats.AddResponseSimMS(d)
}

// advanceLocal additionally accounts CMS-local processing time.
func (s *Session) advanceLocal(d float64) {
	s.advance(d)
	s.cms.stats.AddLocalSimMS(d)
}

// RelationStats implements bridge.DataSource by proxying the remote catalog.
func (c *CMS) RelationStats(name string) (remotedb.TableStats, error) {
	return c.rdi.TableStats(name)
}
