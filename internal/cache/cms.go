package cache

import (
	"sync"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// Features toggles the CMS's optimization techniques. Every feature has a
// sound fallback, so any subset is valid — the experiment suite ablates them
// individually (Figure 2 of the paper maps techniques to the aspects of the
// impedance mismatch they alleviate).
type Features struct {
	// Subsumption enables reuse of cached views via subsumption and query
	// decomposition (Section 5.3.2). Without it only exact result matches
	// are reused.
	Subsumption bool
	// ExactMatch enables exact-match result-cache lookups.
	ExactMatch bool
	// ResultCaching stores query results as cache elements at all.
	ResultCaching bool
	// Generalization widens consumer-bound queries before remote execution
	// (Section 5.3.1 step 1).
	Generalization bool
	// Prefetch issues predicted queries ahead of demand using the path
	// expression (Section 4.2.2 / 5.3.1).
	Prefetch bool
	// Lazy answers cache-only queries with generators (Section 5.1).
	Lazy bool
	// Indexing builds attribute indexes on consumer-annotated columns
	// (Section 4.2.1).
	Indexing bool
	// Parallel overlaps cache-local and remote subquery execution
	// (Section 5, feature (e)).
	Parallel bool
	// AdviceReplacement protects predicted-soon elements from LRU eviction.
	AdviceReplacement bool
}

// AllFeatures enables everything (the full BrAID configuration).
func AllFeatures() Features {
	return Features{
		Subsumption:       true,
		ExactMatch:        true,
		ResultCaching:     true,
		Generalization:    true,
		Prefetch:          true,
		Lazy:              true,
		Indexing:          true,
		Parallel:          true,
		AdviceReplacement: true,
	}
}

// Options configures a CMS instance.
type Options struct {
	Features Features
	// CacheBytes bounds the cache footprint (<= 0: unbounded).
	CacheBytes int64
	// Costs is the virtual cost model shared with the remote client.
	Costs remotedb.Costs
	// ThinkTimeMS is the simulated IE think time between consecutive queries
	// of a session; prefetches overlap with it.
	ThinkTimeMS float64
	// PredictHorizon is how many queries ahead advice-based predictions
	// look (replacement protection, reuse prediction). Default 8.
	PredictHorizon int
}

// CMS is the Cache Management System. It implements bridge.DataSource.
type CMS struct {
	opts Options
	rdi  *RDI
	mgr  *Manager

	mu    sync.Mutex
	stats bridge.SourceStats
}

var _ bridge.DataSource = (*CMS)(nil)

// New builds a CMS over a remote client.
func New(client remotedb.Client, opts Options) *CMS {
	if opts.PredictHorizon <= 0 {
		opts.PredictHorizon = 8
	}
	return &CMS{
		opts: opts,
		rdi:  NewRDI(client),
		mgr:  NewManager(opts.CacheBytes),
	}
}

// Manager exposes the cache manager (cache model introspection, tests).
func (c *CMS) Manager() *Manager { return c.mgr }

// RDI exposes the remote interface (stats, tests).
func (c *CMS) RDI() *RDI { return c.rdi }

// RelationSchema implements bridge.DataSource / caql.SchemaSource.
func (c *CMS) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return c.rdi.RelationSchema(name, arity)
}

// Stats implements bridge.DataSource, folding in the remote client's
// transfer counters.
func (c *CMS) Stats() bridge.SourceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	remote := c.rdi.Stats()
	st.RemoteRequests = remote.Requests
	st.RemoteTuples = remote.TuplesReturned
	st.RemoteSimMS = remote.SimMS
	st.Evictions = c.mgr.Evictions()
	if rs, ok := c.rdi.Resilience(); ok {
		st.Retries = rs.Retries
		st.RemoteFailures = rs.Failures
		st.BreakerOpens = rs.BreakerOpens
	}
	return st
}

// Degraded reports whether the CMS is in cache-only degraded mode (the
// remote DBMS is unavailable). Cached and subsumable queries keep working;
// queries that need the remote fail fast with remotedb.ErrRemoteUnavailable.
func (c *CMS) Degraded() bool { return !c.rdi.Available() }

// BeginSession implements bridge.DataSource. A session accepts optional
// advice and then a sequence of CAQL queries (Section 3).
func (c *CMS) BeginSession(adv *advice.Advice) bridge.Session {
	s := &Session{cms: c, adv: adv, genSeen: make(map[string]int)}
	if adv != nil && adv.Path != nil {
		s.tracker = advice.NewTracker(adv.Path)
	}
	if c.opts.Features.AdviceReplacement && s.tracker != nil {
		c.mgr.SetPredictor(func(e *Element) (int, bool) {
			if e.AdviceName == "" || s.tracker.Lost() {
				return 0, false
			}
			d, ok := s.tracker.PredictWithin(c.opts.PredictHorizon)[e.AdviceName]
			return d, ok
		})
	}
	return s
}

// Session is a CMS session. Sessions are not safe for concurrent use (a
// session models a single IE's query sequence); open one session per
// concurrent client.
type Session struct {
	cms     *CMS
	adv     *advice.Advice
	tracker *advice.Tracker

	simNow  float64
	queries int64
	ended   bool

	// genSeen counts occurrences of each query's fully-generalized canonical
	// form; repeated instances trigger generalization even without a path
	// expression (frequency-based fallback).
	genSeen map[string]int
	// tcMemo memoizes per-session transitive closures (QueryFixpoint).
	tcMemo map[string]*relation.Relation
}

// SimNow returns the session's virtual clock (milliseconds).
func (s *Session) SimNow() float64 { return s.simNow }

// End implements bridge.Session.
func (s *Session) End() {
	if s.ended {
		return
	}
	s.ended = true
	s.cms.mgr.SetPredictor(nil)
}

// QueryText parses and answers a CAQL query.
func (s *Session) QueryText(src string) (*bridge.Stream, error) {
	q, err := caql.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}

// advance moves the session clock by d simulated milliseconds and accounts
// it as response time.
func (s *Session) advance(d float64) {
	s.simNow += d
	s.cms.mu.Lock()
	s.cms.stats.ResponseSimMS += d
	s.cms.mu.Unlock()
}

// advanceLocal additionally accounts CMS-local processing time.
func (s *Session) advanceLocal(d float64) {
	s.advance(d)
	s.cms.mu.Lock()
	s.cms.stats.LocalSimMS += d
	s.cms.mu.Unlock()
}

func (s *Session) bump(f func(*bridge.SourceStats)) {
	s.cms.mu.Lock()
	f(&s.cms.stats)
	s.cms.mu.Unlock()
}

// RelationStats implements bridge.DataSource by proxying the remote catalog.
func (c *CMS) RelationStats(name string) (remotedb.TableStats, error) {
	return c.rdi.TableStats(name)
}
