package cache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
)

// blockingClient wraps an inner client; Exec calls park until the context is
// canceled or release is closed, either always (arm) or only for
// context-bearing calls (blockCancelable — the shape of the prefetch path,
// which runs under the session context while demand queries may not carry a
// cancelable one).
type blockingClient struct {
	inner   remotedb.Client
	entered chan struct{} // one token per parked call
	release chan struct{}

	mu              sync.Mutex
	armed           bool
	blockCancelable bool
}

func newBlockingClient(inner remotedb.Client) *blockingClient {
	return &blockingClient{inner: inner, entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (b *blockingClient) arm() {
	b.mu.Lock()
	b.armed = true
	b.mu.Unlock()
}

func (b *blockingClient) Exec(sql string) (*remotedb.Result, error) {
	return b.ExecCtx(context.Background(), sql)
}

func (b *blockingClient) ExecCtx(ctx context.Context, sql string) (*remotedb.Result, error) {
	b.mu.Lock()
	block := b.armed || (b.blockCancelable && ctx.Done() != nil)
	b.mu.Unlock()
	if block {
		b.entered <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, &remotedb.TransportError{Op: "exec", Err: ctx.Err()}
		case <-b.release:
		}
	}
	return remotedb.ExecContext(ctx, b.inner, sql)
}

func (b *blockingClient) RelationSchema(name string, arity int) (*relation.Schema, error) {
	return b.inner.RelationSchema(name, arity)
}
func (b *blockingClient) TableStats(name string) (remotedb.TableStats, error) {
	return b.inner.TableStats(name)
}
func (b *blockingClient) Tables() ([]string, error) { return b.inner.Tables() }
func (b *blockingClient) Stats() remotedb.Stats     { return b.inner.Stats() }
func (b *blockingClient) Close() error              { return b.inner.Close() }

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelMidLazyGenerator cancels the caller's context while a lazy
// (generator-backed) answer is being consumed: the stream must stop within
// one checkpoint interval and report the typed cancellation, never a silently
// truncated result.
func TestCancelMidLazyGenerator(t *testing.T) {
	e := remotedb.NewEngine()
	b2 := relation.New("b2", relation.NewSchema(
		relation.Attr{Name: "x", Kind: relation.KindInt},
		relation.Attr{Name: "y", Kind: relation.KindInt}))
	for i := 0; i < 300; i++ {
		b2.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Int(int64(i))})
	}
	e.LoadTable(b2)
	adv := advice.MustParse(`view dp(X^, Y^) :- b2(X, Y).`)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(adv).(*Session)
	defer s.End()

	drainQ(t, s, "dp(X, Y) :- b2(X, Y)") // load and cache the view
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	st, err := s.QueryCtx(ctx, caql.MustParse("dp(X, Y) :- b2(X, Y)"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Lazy() {
		t.Fatal("strict-producer cached answer should be lazy")
	}
	if got := len(st.Take(10)); got != 10 {
		t.Fatalf("took %d tuples before cancel", got)
	}
	cancel()
	extra := 0
	for {
		if _, ok := st.Next(); !ok {
			break
		}
		extra++
	}
	if extra >= relation.DefaultGuardEvery {
		t.Fatalf("stream emitted %d tuples after cancel, want < %d (one checkpoint interval)",
			extra, relation.DefaultGuardEvery)
	}
	if 10+extra >= 300 {
		t.Fatal("stream ran to completion; cancellation had no effect")
	}
	if err := st.Err(); !errors.Is(err, bridge.ErrCanceled) {
		t.Fatalf("stream error = %v, want bridge.ErrCanceled", err)
	}
}

// TestSessionEndPoisonsLazyStream checks the session-lifetime half of the
// guard: ending the session stops its outstanding lazy streams with the
// typed cancellation.
func TestSessionEndPoisonsLazyStream(t *testing.T) {
	e, _ := fixtureEngine(t, 7, 200)
	adv := advice.MustParse(`view dp(X^, Y^) :- b2(X, Y).`)
	cms := newCMS(t, e, Options{Features: AllFeatures()})
	s := cms.BeginSession(adv).(*Session)

	drainQ(t, s, "dp(X, Y) :- b2(X, Y)")
	st, err := s.QueryText("dp(X, Y) :- b2(X, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Lazy() {
		t.Fatal("expected a lazy stream")
	}
	s.End()
	if _, ok := st.Next(); ok {
		t.Fatal("stream yielded a tuple after the session ended")
	}
	if err := st.Err(); !errors.Is(err, bridge.ErrCanceled) {
		t.Fatalf("stream error = %v, want bridge.ErrCanceled", err)
	}
}

// TestDeadlineDuringRemoteKeepsBreakerClosed expires a caller deadline while
// the remote call is parked: the query must fail with the typed deadline
// error, and — critically — the cancellation must not move the circuit
// breaker, whose verdicts are about remote health, not caller patience.
func TestDeadlineDuringRemoteKeepsBreakerClosed(t *testing.T) {
	e, _ := fixtureEngine(t, 3, 20)
	costs := remotedb.DefaultCosts()
	blocking := newBlockingClient(remotedb.NewInProcClient(e, costs))
	rc := remotedb.NewResilientClient(blocking, remotedb.Resilience{})
	cms := New(rc, Options{Costs: costs})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	blocking.arm()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.QueryCtx(ctx, caql.MustParse("q(X, Y) :- b2(X, Y)"))
	if !errors.Is(err, bridge.ErrDeadlineExceeded) {
		t.Fatalf("query error = %v, want bridge.ErrDeadlineExceeded", err)
	}
	st := cms.Stats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1 (%+v)", st.DeadlineExceeded, st)
	}
	if st.BreakerOpens != 0 || rc.Breaker() != remotedb.BreakerClosed {
		t.Fatalf("caller deadline moved the breaker: opens=%d state=%v", st.BreakerOpens, rc.Breaker())
	}
	if cms.Degraded() {
		t.Fatal("caller deadline marked the CMS degraded")
	}
	if !st.DispatchConserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
}

// TestBreakerOpenFailsFastUnderDeadline opens the breaker with real remote
// failures, then checks a deadline-bearing query fails fast as a remote
// failure — well before its deadline, and not misclassified as one.
func TestBreakerOpenFailsFastUnderDeadline(t *testing.T) {
	e, _ := fixtureEngine(t, 3, 20)
	costs := remotedb.DefaultCosts()
	fc := remotedb.NewFaultClient(remotedb.NewInProcClient(e, costs),
		remotedb.FaultConfig{Seed: 1, ErrorRate: 1})
	rc := remotedb.NewResilientClient(fc, remotedb.Resilience{
		MaxRetries:      -1,
		BreakerFailures: 1,
		BreakerCooldown: time.Hour,
		Sleep:           func(time.Duration) {},
	})
	cms := New(rc, Options{Costs: costs})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	if _, err := s.Query(caql.MustParse("q(X, Y) :- b2(X, Y)")); err == nil {
		t.Fatal("query against an always-failing remote succeeded")
	}
	if rc.Breaker() != remotedb.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", rc.Breaker())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err := s.QueryCtx(ctx, caql.MustParse("q2(X, Y) :- b2(X, Y)"))
	if err == nil || errors.Is(err, bridge.ErrDeadlineExceeded) {
		t.Fatalf("open-breaker fast-fail returned %v, want a non-deadline remote failure", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("open breaker took %v to fail, want fast", d)
	}
	st := cms.Stats()
	if st.Failed != 2 || !st.DispatchConserved() {
		t.Fatalf("outcome accounting wrong: %+v", st)
	}
}

// TestShedUnderSaturation saturates a MaxInflight=1, MaxQueue=1 CMS: the
// third concurrent query must be shed immediately with the typed overload
// error, and once load clears the conservation invariant must hold.
func TestShedUnderSaturation(t *testing.T) {
	e, _ := fixtureEngine(t, 4, 30)
	costs := remotedb.DefaultCosts()
	blocking := newBlockingClient(remotedb.NewInProcClient(e, costs))
	cms := New(blocking, Options{Costs: costs, MaxInflight: 1, MaxQueue: 1})
	s1 := cms.BeginSession(nil).(*Session)
	defer s1.End()
	s2 := cms.BeginSession(nil).(*Session)
	defer s2.End()
	s3 := cms.BeginSession(nil).(*Session)
	defer s3.End()

	// Warm the schema cache so the armed client only parks Exec calls.
	if _, err := cms.RelationSchema("b2", 2); err != nil {
		t.Fatal(err)
	}
	blocking.arm()

	errs := make(chan error, 2)
	go func() {
		_, err := s1.QueryCtx(context.Background(), caql.MustParse("q1(X, Y) :- b2(X, Y)"))
		errs <- err
	}()
	<-blocking.entered // q1 holds the in-flight slot, parked in the client
	go func() {
		_, err := s2.QueryCtx(context.Background(), caql.MustParse("q2(X, Y) :- b2(X, Y)"))
		errs <- err
	}()
	waitUntil(t, "q2 in the admission queue", func() bool { return cms.Stats().Queued == 1 })

	_, err := s3.QueryCtx(context.Background(), caql.MustParse("q3(X, Y) :- b2(X, Y)"))
	if !errors.Is(err, bridge.ErrOverloaded) {
		t.Fatalf("saturated CMS returned %v, want bridge.ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("shed error should describe the load: %v", err)
	}

	close(blocking.release)
	if err := <-errs; err != nil {
		t.Fatalf("admitted query failed: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
	st := cms.Stats()
	if st.Shed != 1 || st.Queued != 1 || st.Admitted != 2 || st.Completed != 2 {
		t.Fatalf("admission accounting wrong: %+v", st)
	}
	if !st.DispatchConserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
}

// TestEndCancelsInflightPrefetches is the Session.End regression test: End
// must cancel the session context so a prefetch parked in a remote call
// aborts promptly, instead of End blocking on it indefinitely.
func TestEndCancelsInflightPrefetches(t *testing.T) {
	e, _ := fixtureEngine(t, 5, 40)
	costs := remotedb.DefaultCosts()
	blocking := newBlockingClient(remotedb.NewInProcClient(e, costs))
	blocking.blockCancelable = true // demand queries pass; prefetches (session ctx) park
	cms := New(blocking, Options{Features: AllFeatures(), Costs: costs, ThinkTimeMS: 1000})
	s := cms.BeginSession(advice.MustParse(example1Advice)).(*Session)

	drainQ(t, s, `d1(Y) :- b1("a", Y)`)
	drainQ(t, s, `d2(X, 3) :- b2(X, Z) & b3(Z, "a", 3)`) // enqueues the d3 prefetch
	<-blocking.entered                                   // the prefetch is parked in its remote call

	done := make(chan struct{})
	go func() {
		s.End()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("End did not return: session cancellation never reached the parked prefetch")
	}
	st := cms.Stats()
	if st.Prefetches != 0 {
		t.Fatalf("aborted prefetch was counted as issued: %+v", st)
	}
	if st.PanicsRecovered != 0 {
		t.Fatalf("prefetch abort recovered a panic: %+v", st)
	}
}

// TestQueryPanicIsolated checks panic isolation on the query path: a client
// panic fails that one query with a descriptive error, is counted, and the
// session keeps serving.
func TestQueryPanicIsolated(t *testing.T) {
	e, _ := fixtureEngine(t, 6, 20)
	costs := remotedb.DefaultCosts()
	cms := New(&panicOnceClient{Client: remotedb.NewInProcClient(e, costs)}, Options{Costs: costs})
	s := cms.BeginSession(nil).(*Session)
	defer s.End()

	_, err := s.Query(caql.MustParse("q(X, Y) :- b2(X, Y)"))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking query returned %v, want a panic-describing error", err)
	}
	if _, err := s.Query(caql.MustParse("q2(X, Y) :- b2(X, Y)")); err != nil {
		t.Fatalf("session did not survive the panic: %v", err)
	}
	st := cms.Stats()
	if st.PanicsRecovered != 1 || st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("panic accounting wrong: %+v", st)
	}
	if !st.DispatchConserved() {
		t.Fatalf("conservation violated: %+v", st)
	}
}

// panicOnceClient panics on the first Exec and behaves normally after.
type panicOnceClient struct {
	remotedb.Client
	panicked bool
}

func (p *panicOnceClient) Exec(sql string) (*remotedb.Result, error) {
	if !p.panicked {
		p.panicked = true
		panic("injected: exec blew up")
	}
	return p.Client.Exec(sql)
}
