package cache

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/bridge"
)

// admission is the controller in front of query dispatch: a semaphore bounds
// concurrently executing queries across all sessions, and a bounded wait
// queue absorbs short bursts. When both are full the query is shed
// immediately with the typed bridge.ErrOverloaded — under sustained overload
// fast rejection beats unbounded queueing, which only converts overload into
// latency and memory growth. A waiter whose context is canceled (or whose
// deadline expires) leaves the queue with the corresponding typed error.
type admission struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

// newAdmission builds a controller, or returns nil (admission disabled) when
// maxInflight is not positive. maxQueue <= 0 defaults to 2x maxInflight.
func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = 2 * maxInflight
	}
	return &admission{
		sem:      make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// acquire admits one query, returning the release that must be called when
// the query finishes. It never blocks past ctx: a full system sheds
// instantly, and a queued waiter aborts on cancellation.
func (a *admission) acquire(ctx context.Context, st *bridge.StatsCounters) (release func(), err error) {
	select {
	case a.sem <- struct{}{}:
		st.Admitted.Add(1)
		return func() { <-a.sem }, nil
	default:
	}
	// Saturated: try to take a queue slot. The CAS loop bounds the queue
	// without a lock — losers retry against the fresh count.
	for {
		n := a.queued.Load()
		if n >= a.maxQueue {
			// The Shed counter is bumped by the dispatcher's single
			// ClassifyOutcome call, not here, so each query counts once.
			return nil, fmt.Errorf("%w: %d in flight, %d queued", bridge.ErrOverloaded, cap(a.sem), n)
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	st.Queued.Add(1)
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		st.Admitted.Add(1)
		return func() { <-a.sem }, nil
	case <-ctx.Done():
		return nil, bridge.CtxError(ctx)
	}
}
