package cache

import (
	"sync"
	"sync/atomic"

	"repro/internal/caql"
	"repro/internal/relation"
)

// Manager is the Cache Manager (Section 5.4): it stores and replaces cache
// elements (LRU modified by advice), tracks resources, and maintains the
// cache model. It is safe for concurrent use by many sessions.
//
// Concurrency design: the store is split into numShards shards keyed by the
// FNV hash of an element definition's canonical form. Each shard holds the
// elements homed there plus that shard's slice of the (predicate → elements)
// index, under its own RWMutex — lookups (ExactMatch, CandidatesFor) take
// read locks only, so concurrent sessions probing the cache never serialize;
// insert/remove take one shard's write lock. Touch is entirely atomic (no
// lock). Budget eviction is the one global operation: it serializes on
// evictMu and takes shard locks one at a time, never holding two at once.
type Manager struct {
	budget int64
	shards [numShards]managerShard

	nextID  atomic.Int64
	tick    atomic.Int64
	evicted atomic.Int64

	// evictMu serializes budget-eviction sweeps.
	evictMu sync.Mutex

	// pmu guards the per-session predictor registry. A predictor returns the
	// number of queries until an element is predicted to be needed again
	// (advice-modified replacement); ok is false when that session's advice
	// predicts nothing for it.
	pmu        sync.RWMutex
	predictors map[int64]func(e *Element) (int, bool)
}

const numShards = 16

type managerShard struct {
	mu       sync.RWMutex
	elements map[int]*Element
	byCanon  map[string]*Element // exact-match result cache index
	byPred   map[string][]*Element
}

func shardIndex(canon string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(canon); i++ {
		h = (h ^ uint64(canon[i])) * 1099511628211
	}
	return int(h % numShards)
}

// NewManager creates a cache manager with the given byte budget (<= 0 means
// unbounded).
func NewManager(budget int64) *Manager {
	m := &Manager{budget: budget, predictors: make(map[int64]func(*Element) (int, bool))}
	for i := range m.shards {
		s := &m.shards[i]
		s.elements = make(map[int]*Element)
		s.byCanon = make(map[string]*Element)
		s.byPred = make(map[string][]*Element)
	}
	return m
}

func (m *Manager) shardFor(canon string) *managerShard {
	return &m.shards[shardIndex(canon)]
}

// RegisterPredictor installs a session's advice-driven replacement predictor.
func (m *Manager) RegisterPredictor(sid int64, f func(e *Element) (int, bool)) {
	m.pmu.Lock()
	m.predictors[sid] = f
	m.pmu.Unlock()
}

// UnregisterPredictor removes a session's predictor.
func (m *Manager) UnregisterPredictor(sid int64) {
	m.pmu.Lock()
	delete(m.predictors, sid)
	m.pmu.Unlock()
}

// SetPredictor installs a single advice-driven replacement predictor (nil
// clears). It is the single-session convenience form of RegisterPredictor.
func (m *Manager) SetPredictor(f func(e *Element) (int, bool)) {
	m.pmu.Lock()
	if f == nil {
		delete(m.predictors, 0)
	} else {
		m.predictors[0] = f
	}
	m.pmu.Unlock()
}

// predictDistance returns the minimum predicted reuse distance for e across
// all registered session predictors; ok is false when no session predicts it.
func (m *Manager) predictDistance(e *Element) (int, bool) {
	m.pmu.RLock()
	defer m.pmu.RUnlock()
	best, ok := 0, false
	for _, f := range m.predictors {
		if d, predicted := f(e); predicted && (!ok || d < best) {
			best, ok = d, true
		}
	}
	return best, ok
}

// Len returns the number of cached elements.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.elements)
		s.mu.RUnlock()
	}
	return n
}

// SizeBytes returns the total cache footprint.
func (m *Manager) SizeBytes() int64 {
	var n int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.elements {
			n += e.SizeBytes()
		}
		s.mu.RUnlock()
	}
	return n
}

// Evictions returns the cumulative eviction count.
func (m *Manager) Evictions() int64 { return m.evicted.Load() }

// Insert stores an element built from the given parts. Insertion may evict
// victims to respect the budget; elements larger than the whole budget are
// returned unstored (callers still use them for the current answer). stored
// reports whether the element survived the post-insert budget sweep.
func (m *Manager) Insert(e *Element) (stored bool) {
	size := e.SizeBytes()
	if m.budget > 0 && size > m.budget {
		return false
	}
	e.lastUse.Store(m.tick.Add(1))

	s := m.shardFor(e.canon)
	s.mu.Lock()
	if old, ok := s.byCanon[e.canon]; ok {
		s.removeLocked(old)
	}
	s.elements[e.ID] = e
	s.byCanon[e.canon] = e
	for _, p := range e.Def.Preds() {
		s.byPred[p] = append(s.byPred[p], e)
	}
	s.mu.Unlock()

	if m.budget > 0 {
		m.ensureSpace()
		s.mu.RLock()
		_, stored = s.elements[e.ID]
		s.mu.RUnlock()
		return stored
	}
	return true
}

// NewElementID allocates a fresh element ID.
func (m *Manager) NewElementID() int { return int(m.nextID.Add(1)) }

// ensureSpace evicts elements until within budget. The victim is the element
// predicted to be needed *farthest* in the future (unpredicted elements count
// as infinitely far), ties broken by least recent use — the paper's
// replacement use of path expressions: an element predicted "for one of the
// next two queries ... is not the best candidate". Without a predictor this
// degenerates to plain LRU. Sweeps serialize on evictMu and hold at most one
// shard lock at a time.
func (m *Manager) ensureSpace() {
	m.evictMu.Lock()
	defer m.evictMu.Unlock()
	const farAway = int(^uint(0) >> 1)
	for m.SizeBytes() > m.budget {
		var victim *Element
		victimDist := -1
		var victimUse int64
		for i := range m.shards {
			s := &m.shards[i]
			s.mu.RLock()
			for _, e := range s.elements {
				if e.pinned {
					continue
				}
				dist := farAway
				if d, ok := m.predictDistance(e); ok {
					dist = d
				}
				use := e.lastUse.Load()
				if victim == nil || dist > victimDist ||
					(dist == victimDist && use < victimUse) {
					victim, victimDist, victimUse = e, dist, use
				}
			}
			s.mu.RUnlock()
		}
		if victim == nil {
			return
		}
		s := m.shardFor(victim.canon)
		s.mu.Lock()
		if _, still := s.elements[victim.ID]; still {
			s.removeLocked(victim)
			m.evicted.Add(1)
		}
		s.mu.Unlock()
	}
}

func (s *managerShard) removeLocked(e *Element) {
	delete(s.elements, e.ID)
	if cur, ok := s.byCanon[e.canon]; ok && cur.ID == e.ID {
		delete(s.byCanon, e.canon)
	}
	for _, p := range e.Def.Preds() {
		list := s.byPred[p]
		for i, x := range list {
			if x.ID == e.ID {
				s.byPred[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
	}
}

// Remove evicts one element immediately (a no-op if it is already gone): the
// QPO's stale-epoch invalidation path, which must unlink a view before
// refetching so no later lookup can serve it.
func (m *Manager) Remove(e *Element) {
	s := m.shardFor(e.canon)
	s.mu.Lock()
	if _, still := s.elements[e.ID]; still {
		s.removeLocked(e)
	}
	s.mu.Unlock()
}

// Touch records a use of the element for LRU purposes. It is lock-free.
func (m *Manager) Touch(e *Element) {
	e.lastUse.Store(m.tick.Add(1))
	e.hits.Add(1)
}

// ExactMatch finds a published element whose definition exactly matches q up
// to variable renaming (result caching).
func (m *Manager) ExactMatch(q *caql.Query) *Element { return m.ExactMatchFor(q, 0) }

// ExactMatchFor is ExactMatch restricted to elements visible to the given
// session: published elements plus the session's own in-flight prefetches.
func (m *Manager) ExactMatchFor(q *caql.Query, sid int64) *Element {
	canon := q.Canonical()
	s := m.shardFor(canon)
	s.mu.RLock()
	e := s.byCanon[canon]
	s.mu.RUnlock()
	if e != nil && !e.visibleTo(sid) {
		return nil
	}
	return e
}

// CandidatesFor returns published elements sharing at least one predicate
// with q — the paper's "(predicate name, cache element)" index for expediting
// step 2.
func (m *Manager) CandidatesFor(q *caql.Query) []*Element { return m.CandidatesForSession(q, 0) }

// CandidatesForSession is CandidatesFor restricted to elements visible to the
// given session. Every shard is probed under a read lock, so concurrent
// lookups proceed in parallel.
func (m *Manager) CandidatesForSession(q *caql.Query, sid int64) []*Element {
	preds := q.Preds()
	var out []*Element
	contains := func(e *Element) bool {
		for _, x := range out {
			if x.ID == e.ID {
				return true
			}
		}
		return false
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, p := range preds {
			for _, e := range s.byPred[p] {
				if e.visibleTo(sid) && !contains(e) {
					out = append(out, e)
				}
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// Elements returns a snapshot of all elements.
func (m *Manager) Elements() []*Element {
	var out []*Element
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for _, e := range s.elements {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	return out
}

// Model returns the cache model (Section 5.4: "the cache model represents
// the state and statistical information about the cache") as a relation, so
// the IE can query it through the normal interface.
func (m *Manager) Model() *relation.Relation {
	schema := relation.NewSchema(
		relation.Attr{Name: "e_id", Kind: relation.KindInt},
		relation.Attr{Name: "e_def", Kind: relation.KindString},
		relation.Attr{Name: "mode", Kind: relation.KindString},
		relation.Attr{Name: "size_bytes", Kind: relation.KindInt},
		relation.Attr{Name: "hits", Kind: relation.KindInt},
		relation.Attr{Name: "last_use", Kind: relation.KindInt},
		relation.Attr{Name: "advice_name", Kind: relation.KindString},
	)
	out := relation.New("cache_model", schema)
	for _, e := range m.Elements() {
		e.mu.Lock()
		mode := e.Mode
		e.mu.Unlock()
		out.MustAppend(relation.Tuple{
			relation.Int(int64(e.ID)),
			relation.Str(e.Def.String()),
			relation.Str(mode.String()),
			relation.Int(e.SizeBytes()),
			relation.Int(e.hits.Load()),
			relation.Int(e.lastUse.Load()),
			relation.Str(e.AdviceName),
		})
	}
	return out.SortBy([]int{0})
}
