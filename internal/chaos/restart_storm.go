package chaos

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
)

// Restart storm: the crash-recovery counterpart of the connection-kill storm
// (stream_storm.go). The engine under test runs as a REAL subprocess on a
// durable data directory; the parent hammers it with acknowledged insert
// batches and SIGKILLs it mid-burst — no deferred cleanup, no graceful close,
// exactly the death the WAL exists to survive. After each kill the parent
// restarts the child on the same directory and asserts the durability
// contract:
//
//   - prefix durability: every batch acknowledged before the kill is fully
//     present after recovery (fsync=always: ack implies synced);
//   - batch atomicity: a batch is one WAL record, so an unacknowledged batch
//     is either fully present or fully absent — never half-applied;
//   - restart fencing: a resume token minted before the kill is refused by
//     the recovered engine (the logged restart record bumps every version);
//   - stale-epoch defense: a CMS view cached before the kill is invalidated
//     (not served) once any fetch observes the recovered engine's higher
//     catalog epoch, counted by EpochInvalidations.

// RestartStormConfig parameterizes one restart storm.
type RestartStormConfig struct {
	// Dir is the durable data directory shared by every child generation.
	Dir string
	// Rounds is the number of SIGKILL/recover cycles.
	Rounds int
	// RowsPerBatch sizes each INSERT statement (one WAL record per batch).
	RowsPerBatch int
	// Seed drives the kill timing.
	Seed int64
	// MinBurst/MaxBurst bound the seeded delay between the burst starting
	// and the SIGKILL landing.
	MinBurst, MaxBurst time.Duration
	// Fsync is the child's WAL policy. The durability invariant is stated
	// under "always"; the storm only asserts it there.
	Fsync string
	// ChildTimeout bounds one child's startup (spawn to ADDR line).
	ChildTimeout time.Duration
}

// DefaultRestartStormConfig is the per-PR smoke storm: a few kill cycles,
// each landing mid-burst, finishing in a few seconds.
func DefaultRestartStormConfig(dir string) RestartStormConfig {
	return RestartStormConfig{
		Dir:          dir,
		Rounds:       3,
		RowsPerBatch: 5,
		Seed:         1,
		MinBurst:     5 * time.Millisecond,
		MaxBurst:     40 * time.Millisecond,
		Fsync:        "always",
		ChildTimeout: 30 * time.Second,
	}
}

// RestartStormResult summarizes one storm.
type RestartStormResult struct {
	Elapsed time.Duration
	// Kills is the number of SIGKILLs delivered (== Rounds).
	Kills int
	// AckedBatches / AckedRows is the durable ledger the storm verified.
	AckedBatches int
	AckedRows    int
	// RecoveredRows is the table size after the final recovery.
	RecoveredRows int
	// TornTails counts recoveries that truncated a torn final record —
	// evidence the kills landed mid-write, not between appends.
	TornTails int
	// Replayed is the total WAL records replayed across all recoveries.
	Replayed int
	// TokensRefused counts pre-kill resume tokens the recovered engine
	// refused (one per kill round).
	TokensRefused int
	// EpochInvalidations is the CMS counter after the stale-epoch phase.
	EpochInvalidations int64
	// StaleAnswers counts CMS answers that were missing post-recovery rows —
	// any nonzero value is a stale-epoch-defense violation.
	StaleAnswers int
}

// restartChildEnv guards the re-exec: when set, the test binary's TestMain
// runs the child server instead of the test suite.
const restartChildEnv = "BRAID_RESTART_STORM_CHILD"

// RestartChildMain is the subprocess entry point: open the durable engine on
// the directory named by the environment, serve it on an ephemeral port,
// report the address and recovery stats on stdout, then block until killed.
// It never returns.
func RestartChildMain() {
	dir := os.Getenv(restartChildEnv)
	pol, err := remotedb.ParseFsyncPolicy(os.Getenv("BRAID_RESTART_STORM_FSYNC"))
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(3)
	}
	e, st, err := remotedb.OpenEngine(remotedb.Durability{Dir: dir, Fsync: pol})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(3)
	}
	srv := remotedb.NewServer(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		os.Exit(3)
	}
	fmt.Printf("RECOVERED replayed=%d truncated=%d epoch=%d\n",
		st.Replayed, st.TruncatedBytes, st.Epoch)
	fmt.Printf("ADDR %s\n", addr)
	select {} // hold the process open for the parent's SIGKILL
}

// restartChild is one child generation as seen by the parent.
type restartChild struct {
	cmd       *exec.Cmd
	addr      string
	replayed  int
	truncated int64
}

// spawnRestartChild re-execs the test binary as a child server and waits for
// its address line.
func spawnRestartChild(cfg RestartStormConfig) (*restartChild, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(),
		restartChildEnv+"="+cfg.Dir,
		"BRAID_RESTART_STORM_FSYNC="+cfg.Fsync,
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ch := &restartChild{cmd: cmd}
	lines := make(chan string, 4)
	errs := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
		errs <- sc.Err()
	}()
	deadline := time.After(cfg.ChildTimeout)
	for {
		select {
		case line := <-lines:
			switch {
			case strings.HasPrefix(line, "ADDR "):
				ch.addr = strings.TrimPrefix(line, "ADDR ")
				return ch, nil
			case strings.HasPrefix(line, "RECOVERED "):
				for _, kv := range strings.Fields(strings.TrimPrefix(line, "RECOVERED ")) {
					k, v, _ := strings.Cut(kv, "=")
					switch k {
					case "replayed":
						ch.replayed, _ = strconv.Atoi(v)
					case "truncated":
						ch.truncated, _ = strconv.ParseInt(v, 10, 64)
					}
				}
			case strings.HasPrefix(line, "ERR "):
				cmd.Process.Kill()
				cmd.Wait()
				return nil, fmt.Errorf("restart child failed: %s", line)
			}
		case err := <-errs:
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("restart child died before reporting its address: %v", err)
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("restart child did not report an address within %v", cfg.ChildTimeout)
		}
	}
}

// kill delivers SIGKILL and reaps the child.
func (ch *restartChild) kill() {
	ch.cmd.Process.Kill()
	ch.cmd.Wait()
}

// dialRestart is the parent's client stack for one child generation: a small
// plain pool, no retries — the storm must SEE failures (an ack is an ack, an
// error is not), so nothing may paper over the kill.
func dialRestart(addr string) (*remotedb.PoolClient, error) {
	return remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:           2,
		Costs:          remotedb.DefaultCosts(),
		RequestTimeout: 10 * time.Second,
	})
}

// batchStmt builds the one-statement insert batch covering keys [lo, lo+n).
func batchStmt(lo, n int) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d,'v%d')", lo+i, lo+i)
	}
	return sb.String()
}

// recoveredKeys reads the table's key set after a recovery.
func recoveredKeys(c *remotedb.PoolClient) (map[int]bool, error) {
	res, err := c.Exec("SELECT k FROM big")
	if err != nil {
		return nil, err
	}
	keys := make(map[int]bool, res.Rel.Len())
	for _, tup := range res.Rel.Tuples() {
		keys[int(tup[0].AsInt())] = true
	}
	return keys, nil
}

// stormBatch is one issued insert batch in the parent's durability ledger.
type stormBatch struct {
	lo, n int
	acked bool
}

// RunRestartStorm executes one storm and checks every invariant, returning a
// non-nil error on the first violation.
func RunRestartStorm(cfg RestartStormConfig) (RestartStormResult, error) {
	var res RestartStormResult
	started := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))

	var ledger []stormBatch
	nextK := 0
	var preKillToken string

	for round := 0; round <= cfg.Rounds; round++ {
		ch, err := spawnRestartChild(cfg)
		if err != nil {
			return res, err
		}
		res.Replayed += ch.replayed
		if ch.truncated > 0 {
			res.TornTails++
		}
		c, err := dialRestart(ch.addr)
		if err != nil {
			ch.kill()
			return res, err
		}

		if round == 0 {
			for _, ddl := range []string{
				"CREATE TABLE big (k INT, v TEXT)",
				"CREATE TABLE aux (a INT)",
				"INSERT INTO aux VALUES (1)",
			} {
				if _, err := c.Exec(ddl); err != nil {
					c.Close()
					ch.kill()
					return res, fmt.Errorf("round 0 setup %q: %v", ddl, err)
				}
			}
		} else {
			// ---- Verify the previous round's kill against the ledger ----
			keys, err := recoveredKeys(c)
			if err != nil {
				c.Close()
				ch.kill()
				return res, fmt.Errorf("round %d: reading recovered table: %v", round, err)
			}
			for _, b := range ledger {
				present := 0
				for i := 0; i < b.n; i++ {
					if keys[b.lo+i] {
						present++
					}
				}
				if b.acked && present != b.n {
					c.Close()
					ch.kill()
					return res, fmt.Errorf("round %d: acked batch [%d,%d) lost %d/%d rows — prefix durability violated",
						round, b.lo, b.lo+b.n, b.n-present, b.n)
				}
				if present != 0 && present != b.n {
					c.Close()
					ch.kill()
					return res, fmt.Errorf("round %d: batch [%d,%d) half-applied: %d/%d rows — batch atomicity violated",
						round, b.lo, b.lo+b.n, present, b.n)
				}
			}
			// No rows from nowhere: every key must belong to an issued batch.
			if len(keys) > nextK {
				c.Close()
				ch.kill()
				return res, fmt.Errorf("round %d: recovered %d rows but only %d were ever issued", round, len(keys), nextK)
			}

			// ---- Restart fencing: the pre-kill resume token is refused ----
			if preKillToken != "" {
				st, err := c.ExecStreamResume(context.Background(), "SELECT v FROM big", preKillToken, 0)
				if err != nil {
					c.Close()
					ch.kill()
					return res, fmt.Errorf("round %d: resume probe failed outright: %v", round, err)
				}
				_, resumed := resumeState(st)
				for _, ok := st.Next(); ok; _, ok = st.Next() {
				}
				if resumed {
					c.Close()
					ch.kill()
					return res, fmt.Errorf("round %d: recovered engine honored a pre-crash resume token", round)
				}
				res.TokensRefused++
			}
		}

		if round == cfg.Rounds {
			// Final generation: no kill. Run the CMS stale-epoch phase against
			// the live recovered engine, then count the durable rows.
			if err := runEpochPhase(ch.addr, c, &res, cfg.RowsPerBatch, &ledger, &nextK); err != nil {
				c.Close()
				ch.kill()
				return res, err
			}
			keys, err := recoveredKeys(c)
			if err == nil {
				res.RecoveredRows = len(keys)
			}
			c.Close()
			ch.kill()
			break
		}

		// ---- Write burst, SIGKILL landing mid-flight ----
		burst := cfg.MinBurst + time.Duration(rng.Int63n(int64(cfg.MaxBurst-cfg.MinBurst)+1))
		killed := make(chan struct{})
		go func() {
			time.Sleep(burst)
			ch.kill()
			close(killed)
		}()
		minted := false
		for {
			b := stormBatch{lo: nextK, n: cfg.RowsPerBatch}
			nextK += b.n
			_, err := c.Exec(batchStmt(b.lo, b.n))
			if err == nil {
				b.acked = true
				ledger = append(ledger, b)
				if !minted {
					// Mint the fencing probe early in the burst so it exists
					// whenever the kill lands.
					if tok, terr := mintToken(c); terr == nil {
						preKillToken = tok
						minted = true
					}
				}
				continue
			}
			ledger = append(ledger, b) // unacked: all-or-nothing is still owed
			break
		}
		<-killed
		res.Kills++
		res.AckedBatches = 0
		res.AckedRows = 0
		for _, b := range ledger {
			if b.acked {
				res.AckedBatches++
				res.AckedRows += b.n
			}
		}
		c.Close()
	}

	res.Elapsed = time.Since(started)
	if res.Kills != cfg.Rounds {
		return res, fmt.Errorf("delivered %d kills, want %d", res.Kills, cfg.Rounds)
	}
	if res.AckedBatches == 0 {
		return res, fmt.Errorf("no batch was ever acknowledged — the storm wrote nothing")
	}
	if res.TokensRefused != cfg.Rounds {
		return res, fmt.Errorf("only %d/%d pre-crash resume tokens were refused", res.TokensRefused, cfg.Rounds)
	}
	if res.StaleAnswers > 0 {
		return res, fmt.Errorf("CMS served %d stale-epoch answers", res.StaleAnswers)
	}
	if res.EpochInvalidations == 0 {
		return res, fmt.Errorf("stale-epoch phase ran but EpochInvalidations stayed zero — the defense never fired")
	}
	return res, nil
}

// mintToken opens and drains one resumable stream, returning its token.
func mintToken(c *remotedb.PoolClient) (string, error) {
	st, err := c.ExecStream(context.Background(), "SELECT v FROM big")
	if err != nil {
		return "", err
	}
	tok, _ := resumeState(st)
	for _, ok := st.Next(); ok; _, ok = st.Next() {
	}
	if err := st.Err(); err != nil {
		return "", err
	}
	if tok == "" {
		return "", fmt.Errorf("stream carried no resume token")
	}
	return tok, nil
}

// resumeState extracts the resume header from any stream that carries one.
func resumeState(st remotedb.TupleStream) (token string, resumed bool) {
	if rs, ok := st.(interface{ ResumeState() (string, bool) }); ok {
		return rs.ResumeState()
	}
	return "", false
}

// runEpochPhase is the CMS leg: a view cached against the PREVIOUS epoch must
// be invalidated — not served — once any fetch observes the recovered
// engine's newer epoch. writer keeps inserting through the plain client so
// the epoch actually moves under the cache.
func runEpochPhase(addr string, writer *remotedb.PoolClient, res *RestartStormResult,
	rowsPerBatch int, ledger *[]stormBatch, nextK *int) error {
	cp, err := dialRestart(addr)
	if err != nil {
		return err
	}
	defer cp.Close()
	cms := cache.New(cp, cache.Options{Costs: remotedb.DefaultCosts(), Features: cache.AllFeatures()})
	s := cms.BeginSession(nil)
	defer s.End()

	qBig := caql.MustParse(`q(X, Y) :- big(X, Y)`)
	qAux := caql.MustParse(`p(A) :- aux(A)`)

	// 1. Cache the big view under the current epoch.
	stream, err := s.Query(qBig)
	if err != nil {
		return fmt.Errorf("epoch phase: caching query: %v", err)
	}
	before := stream.Drain("out").Len()

	// 2. Move the engine's epoch under the cache: durable inserts through the
	// writer client (a different pool, so the CMS's own client has not seen
	// the new epoch yet).
	b := stormBatch{lo: *nextK, n: rowsPerBatch, acked: true}
	*nextK += b.n
	if _, err := writer.Exec(batchStmt(b.lo, b.n)); err != nil {
		return fmt.Errorf("epoch phase: post-cache insert: %v", err)
	}
	*ledger = append(*ledger, b)

	// 3. An unrelated fetch observes the newer epoch...
	if stream, err = s.Query(qAux); err != nil {
		return fmt.Errorf("epoch phase: observing query: %v", err)
	}
	stream.Drain("out")

	// 4. ...so re-asking the cached query must invalidate and refetch, never
	// serve the pre-insert extension.
	if stream, err = s.Query(qBig); err != nil {
		return fmt.Errorf("epoch phase: re-query: %v", err)
	}
	after := stream.Drain("out").Len()
	if after != before+rowsPerBatch {
		res.StaleAnswers++
	}
	res.EpochInvalidations = cms.Stats().EpochInvalidations
	return nil
}
