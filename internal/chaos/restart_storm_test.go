package chaos

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain intercepts the restart storm's re-exec: a child invocation (env
// var set) serves a durable engine instead of running the suite.
func TestMain(m *testing.M) {
	if os.Getenv(restartChildEnv) != "" {
		RestartChildMain() // never returns
	}
	os.Exit(m.Run())
}

// TestRestartStorm SIGKILLs a real engine subprocess mid-write-burst across
// several crash/recover cycles and asserts the durability contract: every
// acknowledged batch survives, no batch is half-applied, pre-crash resume
// tokens are refused, and the CMS invalidates (never serves) views built
// under a dead epoch.
func TestRestartStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess storm skipped in -short")
	}
	before := runtime.NumGoroutine()
	cfg := DefaultRestartStormConfig(t.TempDir())
	if *chaosShort {
		cfg.Rounds = 2
	}
	if *chaosLong {
		cfg.Rounds = 12
		cfg.MaxBurst = 120 * time.Millisecond
	}
	res, err := RunRestartStorm(cfg)
	if err != nil {
		t.Fatalf("restart storm invariants violated: %v\n%+v", err, res)
	}
	if res.Replayed == 0 {
		t.Fatalf("no recovery ever replayed a record: %+v", res)
	}
	t.Logf("restart storm: %d kills, %d acked batches (%d rows), %d replayed, %d torn tails, %d tokens refused, %d epoch invalidations in %v",
		res.Kills, res.AckedBatches, res.AckedRows, res.Replayed, res.TornTails,
		res.TokensRefused, res.EpochInvalidations, res.Elapsed)
	stormLeakCheck(t, before)
}

// TestRestartStormChildRecoversCleanly is the one-round sanity arm: a single
// kill cycle must recover at least every acknowledged row — a fast failure
// locator when the full storm trips.
func TestRestartStormChildRecoversCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short")
	}
	cfg := DefaultRestartStormConfig(t.TempDir())
	cfg.Rounds = 1
	res, err := RunRestartStorm(cfg)
	if err != nil {
		t.Fatalf("single-round storm: %v\n%+v", err, res)
	}
	if res.RecoveredRows < res.AckedRows {
		t.Fatalf("final table holds %d rows, fewer than the %d acked", res.RecoveredRows, res.AckedRows)
	}
}
