// Package chaos is a soak harness for the concurrent CMS under adversarial
// conditions: many sessions replay an advice-driven workload while the remote
// client injects transport errors, hangs, latency spikes, and panics, and the
// callers themselves cancel queries at random and impose deadline storms.
//
// The harness is the robustness counterpart of the E12 scaling experiment: it
// does not measure speed, it asserts *invariants* that must survive any fault
// interleaving:
//
//   - stats conservation: every issued query resolves to exactly one outcome
//     (Completed, Canceled, DeadlineExceeded, Shed, or Failed);
//   - typed errors: any cancellation-related failure carries the bridge
//     sentinel (ErrCanceled / ErrDeadlineExceeded / ErrOverloaded), never a
//     bare context error with no classification;
//   - shard-lock health: after the storm, a fresh session can still query the
//     CMS (no lock left held by a canceled or panicked query);
//   - no goroutine leaks (asserted by the test around Run).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// Config parameterizes one soak run. The zero value is not runnable; use
// DefaultConfig and override.
type Config struct {
	// Sessions is the number of concurrent sessions replaying the workload.
	Sessions int
	// QueriesPerSession is how many queries each session issues (the shared
	// sequence is cycled).
	QueriesPerSession int
	// Seed seeds every deterministic stream (per-session rngs, fault stream).
	Seed int64
	// Faults is the injected fault mix at the remote client.
	Faults remotedb.FaultConfig
	// CancelRate is the per-query probability that the caller cancels the
	// query's context from a racing goroutine mid-flight.
	CancelRate float64
	// DeadlineRate is the per-query probability of running under Deadline
	// (a "deadline storm" when high).
	DeadlineRate float64
	// Deadline is the tight per-query deadline for deadline-storm queries.
	Deadline time.Duration
	// Options configures the CMS under test (features, admission control,
	// query timeout). Costs defaults to remotedb.DefaultCosts().
	Options cache.Options
}

// DefaultConfig is a storm that exercises every recovery path: transport
// errors, hangs longer than the deadline, panics, random caller cancels, and
// enough sessions to saturate the admission controller.
func DefaultConfig() Config {
	return Config{
		Sessions:          8,
		QueriesPerSession: 80,
		Seed:              1,
		Faults: remotedb.FaultConfig{
			Seed:        1,
			ErrorRate:   0.05,
			DropRate:    0.02,
			HangRate:    0.05,
			HangFor:     2 * time.Millisecond,
			LatencyRate: 0.10,
			Latency:     500 * time.Microsecond,
			PanicRate:   0.02,
		},
		CancelRate:   0.10,
		DeadlineRate: 0.15,
		Deadline:     300 * time.Microsecond,
		Options: cache.Options{
			Features:     cache.AllFeatures(),
			MaxInflight:  4,
			MaxQueue:     4,
			QueryTimeout: 250 * time.Millisecond,
		},
	}
}

// Result summarizes one soak run.
type Result struct {
	Elapsed    time.Duration
	Stats      bridge.SourceStats
	Faults     remotedb.FaultCounts
	Resilience remotedb.ResilienceStats
	// UntypedErrors are cancellation-related errors that failed to carry a
	// bridge sentinel — each one is an invariant violation.
	UntypedErrors []string
	// Drained is the total number of tuples pulled from answer streams.
	Drained int64
}

// chaosAdvice is the Example 1 advice shape over the chain workload — the
// same session shape as E10/E12, so prefetch, generalization, subsumption,
// and lazy generators all participate in the storm.
const chaosAdvice = `
	view d1(Y^) :- b1("c1", Y) [r1].
	view d2(X^, Y?) :- b2(X, Z) & b3(Z, "c2", Y) [r2].
	view d3(X^, Y?) :- b3(X, "c3", Z) & b1(Z, Y) [r3].
	path (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>.
`

// chaosSequence is the per-session query list: the E10 ablation shape (d1,
// instance pairs, an exact repeat, decomposable joins) so every CMS technique
// is in flight when faults land.
func chaosSequence() []*caql.Query {
	qs := []*caql.Query{caql.MustParse(`d1(Y) :- b1("c1", Y)`)}
	d2t := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	d3t := caql.MustParse(`d3(X, Y) :- b3(X, "c3", Z) & b1(Z, Y)`)
	for c := 0; c < 6; c++ {
		bind := map[string]relation.Value{"Y": relation.Int(int64(c))}
		qs = append(qs, d2t.Instantiate(bind), d3t.Instantiate(bind))
	}
	qs = append(qs,
		caql.MustParse(`d1(Y) :- b1("c1", Y)`),
		caql.MustParse(`j1(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 1`),
		caql.MustParse(`j2(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 2`))
	return qs
}

// Run executes one soak and checks the post-quiescence invariants, returning
// a non-nil error on any violation. Goroutine accounting is left to the
// caller (it needs before/after snapshots around this call).
func Run(cfg Config) (Result, error) {
	w := workload.Chain(53, 400, 24)
	costs := cfg.Options.Costs
	if costs == (remotedb.Costs{}) {
		costs = remotedb.DefaultCosts()
		cfg.Options.Costs = costs
	}
	fault := remotedb.NewFaultClient(remotedb.NewInProcClient(w.Engine(), costs), cfg.Faults)
	// The resilient layer sits where a real deployment puts it: retries and
	// the breaker absorb injected transport errors, while caller cancellation
	// must pass through without tripping the breaker.
	resilient := remotedb.NewResilientClient(fault, remotedb.Resilience{
		JitterSeed: cfg.Seed,
		Sleep:      func(time.Duration) {}, // no real backoff in the soak
	})
	cms := cache.New(resilient, cfg.Options)

	seq := chaosSequence()
	var (
		res     Result
		mu      sync.Mutex // guards res.UntypedErrors, res.Drained
		wg      sync.WaitGroup
		started = time.Now()
	)
	noteUntyped := func(stage string, err error) {
		mu.Lock()
		defer mu.Unlock()
		if len(res.UntypedErrors) < 16 { // cap the report, not the check
			res.UntypedErrors = append(res.UntypedErrors, fmt.Sprintf("%s: %v", stage, err))
		} else {
			res.UntypedErrors = append(res.UntypedErrors[:16], "...")
		}
	}
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(sid)*7919))
			s := cms.BeginSession(advice.MustParse(chaosAdvice)).(*cache.Session)
			defer s.End()
			for n := 0; n < cfg.QueriesPerSession; n++ {
				q := seq[n%len(seq)]
				base, cancel := context.WithCancel(context.Background())
				ctx, cleanup := base, context.CancelFunc(func() {})
				if rng.Float64() < cfg.DeadlineRate {
					ctx, cleanup = context.WithTimeout(base, cfg.Deadline)
				}
				var racer sync.WaitGroup
				if rng.Float64() < cfg.CancelRate {
					delay := time.Duration(rng.Intn(400)) * time.Microsecond
					racer.Add(1)
					go func() {
						defer racer.Done()
						time.Sleep(delay)
						cancel()
					}()
				}
				stream, err := s.QueryCtx(ctx, q)
				if err != nil {
					if untypedCtxErr(err) {
						noteUntyped("dispatch", err)
					}
				} else {
					rows, derr := stream.DrainErr("out")
					mu.Lock()
					res.Drained += int64(rows.Len())
					mu.Unlock()
					if derr != nil && untypedCtxErr(derr) {
						noteUntyped("drain", derr)
					}
				}
				racer.Wait()
				cleanup()
				cancel()
			}
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(started)
	res.Stats = cms.Stats()
	res.Faults = fault.Counts()
	res.Resilience = resilient.ResilienceStats()

	if len(res.UntypedErrors) > 0 {
		return res, fmt.Errorf("chaos: %d cancellation errors without a bridge sentinel, e.g. %s",
			len(res.UntypedErrors), res.UntypedErrors[0])
	}
	if !res.Stats.DispatchConserved() {
		return res, fmt.Errorf("chaos: stats conservation violated: Queries=%d != Completed=%d + Canceled=%d + DeadlineExceeded=%d + Shed=%d + Failed=%d",
			res.Stats.Queries, res.Stats.Completed, res.Stats.Canceled,
			res.Stats.DeadlineExceeded, res.Stats.Shed, res.Stats.Failed)
	}
	// A panic injected on an attempt the ResilientClient had already
	// abandoned (caller canceled or attempt deadline fired) is discarded with
	// the attempt's outcome and never reaches the CMS recovery layer, so only
	// demand a recovery when more panics were injected than there were
	// abandonment events that could have swallowed them.
	abandonable := res.Stats.Canceled + res.Stats.DeadlineExceeded + res.Resilience.DeadlinesExceeded
	if res.Faults.Panics > abandonable && res.Stats.PanicsRecovered == 0 {
		return res, fmt.Errorf("chaos: %d panics injected (at most %d abandonable) but none recovered by the CMS",
			res.Faults.Panics, abandonable)
	}
	// Shard-lock health: a canceled or panicked query must never leave a
	// cache shard locked. A fresh session probing every relation would hang
	// here if one did.
	if err := probe(cms); err != nil {
		return res, fmt.Errorf("chaos: post-storm probe failed (shard lock or session registry unhealthy): %w", err)
	}
	return res, nil
}

// probe runs a plain query on a fresh session with a generous deadline; it
// fails if the CMS is wedged.
func probe(cms *cache.CMS) error {
	s := cms.BeginSession(advice.MustParse(chaosAdvice)).(*cache.Session)
	defer s.End()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream, err := s.QueryCtx(ctx, caql.MustParse(`d1(Y) :- b1("c1", Y)`))
	if err != nil {
		return err
	}
	_, err = stream.DrainErr("out")
	return err
}

// untypedCtxErr reports whether err is cancellation-related but carries no
// bridge sentinel — the failure mode the typed-error plumbing must prevent.
func untypedCtxErr(err error) bool {
	ctxish := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	typed := errors.Is(err, bridge.ErrCanceled) ||
		errors.Is(err, bridge.ErrDeadlineExceeded) ||
		errors.Is(err, bridge.ErrOverloaded)
	return ctxish && !typed
}
