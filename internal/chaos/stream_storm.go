package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// StormConfig parameterizes a mid-stream connection-kill storm: a real TCP
// server whose listener severs streamed-result connections after a few frames,
// hammered by concurrent consumers whose only defence is the resumable-stream
// machinery. It is the stream-level counterpart of Config, which injects
// request-level faults into an in-process client.
type StormConfig struct {
	// Workers is the number of concurrent raw-stream consumers.
	Workers int
	// StreamsPerWorker is how many streamed statements each worker drains.
	StreamsPerWorker int
	// Seed seeds every deterministic stream (statement choice, listener
	// faults, retry jitter).
	Seed int64
	// KillRate is the per-stream probability of the listener severing the
	// connection mid-stream.
	KillRate float64
	// KillAfter is the number of response frames delivered before the kill
	// (>= 2 guarantees at least one payload frame per life, so delivery
	// always makes progress and the storm terminates even at KillRate 1).
	KillAfter int
	// FrameTuples is the response frame size; small values maximize the
	// number of kill points per stream.
	FrameTuples int
	// Rows sizes the scanned table: more rows, more frames, more kills.
	Rows int
	// DisableResume turns the repair machinery off — the control arm: under
	// a storm the raw failure rate must then become visible to consumers.
	DisableResume bool
	// Sessions and QueriesPerSession size the CMS leg, which replays CAQL
	// queries through a pooled remote client against the same hostile
	// listener and asserts the dispatch-conservation invariant.
	Sessions          int
	QueriesPerSession int
	// PoolSize (0: 2) and MaxRetries (0: 50) scale the client stack with the
	// storm: every kill fails every stream multiplexed on the connection, so
	// more workers per connection means longer runs of zero-progress lives —
	// a bigger storm needs more connections and a higher no-progress bound.
	PoolSize   int
	MaxRetries int
	// ParallelDOP > 1 adds the parallel leg: join and aggregation streams
	// executed by the morsel-parallel worker pool while the listener kills
	// connections mid-flight. Parallel plan streams carry no resume token, so
	// the contract under kills is fail-visibly-or-deliver-exactly: a
	// completed stream must bag-match the fault-free delivery, a killed one
	// must surface an error — and the server must leak no workers either way.
	ParallelDOP     int
	ParallelStreams int
	// ParallelKillRate is the parallel leg's own kill probability (its
	// streams cannot be repaired, so the rate is moderated to keep a
	// deterministic mix of completed and killed streams).
	ParallelKillRate float64
}

// DefaultStormConfig is a storm in which roughly every stream dies at least
// once, sized to finish in well under a second for the per-PR smoke test.
func DefaultStormConfig() StormConfig {
	return StormConfig{
		Workers:           6,
		StreamsPerWorker:  8,
		Seed:              1,
		KillRate:          0.9,
		KillAfter:         2,
		FrameTuples:       4,
		Rows:              160,
		Sessions:          4,
		QueriesPerSession: 24,
		ParallelDOP:       4,
		ParallelStreams:   24,
		ParallelKillRate:  0.5,
	}
}

// StormResult summarizes one storm run.
type StormResult struct {
	Elapsed time.Duration
	// Streams / Completed / Failed account every raw-leg stream: attempted =
	// completed (drained to a nil terminal error) + failed.
	Streams   int64
	Completed int64
	Failed    int64
	// Mismatched counts completed streams whose delivery was not
	// byte-identical to the uninterrupted in-memory delivery — any nonzero
	// value is an exactly-once violation regardless of configuration.
	Mismatched int64
	// Resumes is the number of mid-stream repairs the client performed.
	Resumes int64
	// ServerKills / ServerResumes are the listener's own counters.
	ServerKills   int64
	ServerResumes int64
	// CMSStats is the CMS leg's dispatch accounting.
	CMSStats bridge.SourceStats
	// Errors samples raw-leg stream failures (capped) for diagnosis.
	Errors []string
	// Parallel-leg books: attempted = completed + failed; ParMismatched
	// counts completed streams whose sorted delivery differed from the
	// fault-free one; ParEngineStreams is the server engine's own count of
	// executions that actually ran on the morsel worker pool.
	ParStreams       int64
	ParCompleted     int64
	ParFailed        int64
	ParMismatched    int64
	ParEngineStreams int64
}

// stormStatements returns the raw-leg statement set with its expected
// deliveries, computed from a private fault-free engine scan. Every statement
// is single-table and therefore streamable (carries a resume token).
func stormStatements(e *remotedb.Engine) (stmts []string, want map[string]string, err error) {
	stmts = []string{
		"SELECT v FROM big",
		"SELECT v FROM big WHERE k < 120",
		"SELECT k, v FROM big WHERE k >= 40",
		"SELECT * FROM big WHERE k < 150",
	}
	want = make(map[string]string, len(stmts))
	for _, s := range stmts {
		sc, ok := e.ExecuteSQLStream(s)
		if !ok {
			return nil, nil, fmt.Errorf("storm statement %q is not streamable", s)
		}
		var sb strings.Builder
		for tup, ok := sc.Next(); ok; tup, ok = sc.Next() {
			for i, v := range tup {
				if i > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(v.String())
			}
			sb.WriteByte('\n')
		}
		want[s] = sb.String()
	}
	return stmts, want, nil
}

// stormEngine builds the raw-leg table: big(k INT, v TEXT), rows in insertion
// order so the uninterrupted delivery is deterministic.
func stormEngine(rows int) (*remotedb.Engine, error) {
	e := remotedb.NewEngine()
	if _, _, err := e.ExecuteSQL("CREATE TABLE big (k INT, v TEXT)"); err != nil {
		return nil, err
	}
	const batch = 200
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,'v%d')", i, i)
		}
		if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// RunStorm executes one connection-kill storm and checks its invariants:
//
//   - exactly-once: every COMPLETED stream's delivery is byte-identical to
//     the uninterrupted delivery — no duplicates, no gaps, order preserved —
//     however many times its connections died (holds with resume on OR off);
//   - availability: with resume on and KillAfter >= 2, every stream
//     completes (the repair machinery hides every kill);
//   - conservation: the CMS leg's dispatch accounting balances and the CMS
//     still answers a fresh session afterwards.
//
// Goroutine accounting is left to the caller (before/after snapshots).
func RunStorm(cfg StormConfig) (StormResult, error) {
	var res StormResult
	e, err := stormEngine(cfg.Rows)
	if err != nil {
		return res, err
	}
	stmts, want, err := stormStatements(e)
	if err != nil {
		return res, err
	}

	srv := remotedb.NewServerWithOptions(e, remotedb.ServerOptions{
		FrameTuples: cfg.FrameTuples,
		Faults: &remotedb.ListenerFaults{
			Seed:            cfg.Seed,
			StreamKillRate:  cfg.KillRate,
			StreamKillAfter: cfg.KillAfter,
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	// ---- Leg 1: raw streams, byte-identical delivery under kills ----
	started := time.Now()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	rc, err := stormClient(addr, cfg, 0)
	if err != nil {
		return res, err
	}
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wid)*104729))
			for n := 0; n < cfg.StreamsPerWorker; n++ {
				stmt := stmts[rng.Intn(len(stmts))]
				var sb strings.Builder
				st, err := rc.ExecStream(context.Background(), stmt)
				if err == nil {
					for tup, ok := st.Next(); ok; tup, ok = st.Next() {
						for i, v := range tup {
							if i > 0 {
								sb.WriteByte('|')
							}
							sb.WriteString(v.String())
						}
						sb.WriteByte('\n')
					}
					err = st.Err()
				}
				mu.Lock()
				res.Streams++
				switch {
				case err != nil:
					res.Failed++
					if len(res.Errors) < 8 {
						res.Errors = append(res.Errors, err.Error())
					}
				case sb.String() != want[stmt]:
					res.Completed++
					res.Mismatched++
				default:
					res.Completed++
				}
				mu.Unlock()
			}
		}(wkr)
	}
	wg.Wait()
	res.Resumes = rc.ResilienceStats().StreamResumes
	rc.Close()

	// ---- Leg 2: the CMS over the same hostile wire must keep its books ----
	if cfg.Sessions > 0 {
		w := workload.Chain(53, 400, 24)
		wsrv := remotedb.NewServerWithOptions(w.Engine(), remotedb.ServerOptions{
			FrameTuples: cfg.FrameTuples,
			Faults: &remotedb.ListenerFaults{
				Seed:            cfg.Seed + 1,
				StreamKillRate:  cfg.KillRate,
				StreamKillAfter: cfg.KillAfter,
			},
		})
		waddr, err := wsrv.Listen("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		defer wsrv.Close()
		wrc, err := stormClient(waddr, cfg, 7)
		if err != nil {
			return res, err
		}
		// Zero Features: no caching at all, so EVERY query crosses the hostile
		// wire — maximum stream-kill exposure for the dispatch accounting.
		cms := cache.New(wrc, cache.Options{Costs: remotedb.DefaultCosts()})
		queries := []*caql.Query{
			caql.MustParse(`d1(Y) :- b1("c1", Y)`),
			caql.MustParse(`q2(X, Y) :- b2(X, Y) & Y != 3`),
			caql.MustParse(`q3(X, Z) :- b3(X, "c2", Z)`),
		}
		var cwg sync.WaitGroup
		for sid := 0; sid < cfg.Sessions; sid++ {
			cwg.Add(1)
			go func(sid int) {
				defer cwg.Done()
				s := cms.BeginSession(nil)
				defer s.End()
				for n := 0; n < cfg.QueriesPerSession; n++ {
					stream, err := s.QueryCtx(context.Background(), queries[n%len(queries)])
					if err != nil {
						continue // accounted as Failed; conservation checks the books
					}
					stream.Drain("out")
				}
			}(sid)
		}
		cwg.Wait()
		res.CMSStats = cms.Stats()
		wrc.Close()

		if !res.CMSStats.DispatchConserved() {
			return res, fmt.Errorf("storm: CMS dispatch accounting violated: Queries=%d != Completed=%d + Canceled=%d + DeadlineExceeded=%d + Shed=%d + Failed=%d",
				res.CMSStats.Queries, res.CMSStats.Completed, res.CMSStats.Canceled,
				res.CMSStats.DeadlineExceeded, res.CMSStats.Shed, res.CMSStats.Failed)
		}
	}
	// ---- Leg 3: morsel-parallel streams under kills ----
	if cfg.ParallelDOP > 1 {
		if err := runParallelStormLeg(cfg, &res); err != nil {
			return res, err
		}
	}

	res.Elapsed = time.Since(started)
	ss := srv.ServerStats()
	res.ServerKills = ss.StreamKills
	res.ServerResumes = ss.StreamResumes

	// Exactly-once holds unconditionally: resume machinery may fail a stream,
	// never corrupt one.
	if res.Mismatched > 0 {
		return res, fmt.Errorf("storm: %d completed streams were not byte-identical to the uninterrupted delivery", res.Mismatched)
	}
	if !cfg.DisableResume {
		if res.Failed > 0 {
			return res, fmt.Errorf("storm: %d/%d streams failed despite resume being enabled, e.g. %s",
				res.Failed, res.Streams, strings.Join(res.Errors, "; "))
		}
		if cfg.KillRate > 0 && res.Resumes == 0 {
			return res, fmt.Errorf("storm: kill rate %.2f produced zero resumes — the storm did not bite", cfg.KillRate)
		}
	}
	return res, nil
}

// parallelStormEngine builds the parallel leg's tables: fact(id, g, v) sized
// so a 32-tuple morsel splits it across a dop-wide pool, plus a small dim(g,
// dname) build side, with the engine forced onto the parallel path for every
// eligible plan.
func parallelStormEngine(dop int) (*remotedb.Engine, error) {
	e := remotedb.NewEngine()
	if _, _, err := e.ExecuteSQL("CREATE TABLE dim (g INT, dname TEXT)"); err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO dim VALUES ")
	for g := 0; g < 8; g++ {
		if g > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d,'d%d')", g, g)
	}
	if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
		return nil, err
	}
	if _, _, err := e.ExecuteSQL("CREATE TABLE fact (id INT, g INT, v TEXT)"); err != nil {
		return nil, err
	}
	const rows, batch = 600, 200
	for lo := 0; lo < rows; lo += batch {
		sb.Reset()
		sb.WriteString("INSERT INTO fact VALUES ")
		for i := lo; i < lo+batch; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,%d,'v%d')", i, i%8, i)
		}
		if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
			return nil, err
		}
	}
	e.SetParallelism(dop)
	e.SetParallelMinRows(1)
	e.SetMorselSize(32)
	return e, nil
}

// sortedDelivery renders a drained stream as sorted lines: parallel emission
// order is nondeterministic, so completed deliveries compare as bags.
func sortedDelivery(lines []string) string {
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// runParallelStormLeg drives join and aggregation statements through a
// DOP>1 engine behind a kill-prone listener. Parallel plan streams carry no
// resume token, so the invariant is fail-visibly-or-deliver-exactly: every
// completed stream bag-matches the fault-free delivery, and kills surface as
// errors, never truncated "complete" results. Streams run sequentially so
// the kill-roll sequence (and therefore the outcome books) is deterministic
// per seed.
func runParallelStormLeg(cfg StormConfig, res *StormResult) error {
	pe, err := parallelStormEngine(cfg.ParallelDOP)
	if err != nil {
		return err
	}
	stmts := []string{
		"SELECT fact.v, dim.dname FROM fact, dim WHERE fact.g = dim.g",
		"SELECT g, COUNT(*) FROM fact GROUP BY g",
		"SELECT dim.dname, COUNT(*) FROM fact, dim WHERE fact.g = dim.g GROUP BY dim.dname",
	}
	want := make(map[string]string, len(stmts))
	for _, s := range stmts {
		sc, ok := pe.ExecuteSQLPipeline(s)
		if !ok {
			return fmt.Errorf("parallel storm statement %q not streamable", s)
		}
		var lines []string
		for tup, ok := sc.Next(); ok; tup, ok = sc.Next() {
			lines = append(lines, tupleLine(tup))
		}
		if c, okc := sc.(interface{ Close() error }); okc {
			c.Close()
		}
		want[s] = sortedDelivery(lines)
	}
	if pe.ParallelStats().Streams == 0 {
		return fmt.Errorf("parallel leg: fault-free warmup never ran on the worker pool")
	}

	killRate := cfg.ParallelKillRate
	if killRate <= 0 {
		killRate = 0.5
	}
	psrv := remotedb.NewServerWithOptions(pe, remotedb.ServerOptions{
		FrameTuples: cfg.FrameTuples,
		Faults: &remotedb.ListenerFaults{
			Seed:            cfg.Seed + 2,
			StreamKillRate:  killRate,
			StreamKillAfter: cfg.KillAfter,
		},
	})
	paddr, err := psrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer psrv.Close()
	// No health manager on this client: background probes would consume
	// kill-roll RNG draws at timer-dependent points, making the leg's
	// completed/failed split nondeterministic. Redial-on-use alone recovers
	// the connection after each kill.
	pp, err := remotedb.DialPool(paddr, remotedb.PoolOptions{
		Size:        2,
		FrameTuples: cfg.FrameTuples,
		Redial:      true,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		return err
	}
	prc := remotedb.NewResilientClient(pp, remotedb.Resilience{
		JitterSeed:      cfg.Seed + 13,
		MaxRetries:      50,
		BreakerFailures: -1,
		BaseBackoff:     200 * time.Microsecond,
		MaxBackoff:      2 * time.Millisecond,
	})
	defer prc.Close()

	rng := rand.New(rand.NewSource(cfg.Seed + 31337))
	streams := cfg.ParallelStreams
	if streams <= 0 {
		streams = 24
	}
	for n := 0; n < streams; n++ {
		stmt := stmts[rng.Intn(len(stmts))]
		var lines []string
		st, err := prc.ExecStream(context.Background(), stmt)
		if err == nil {
			for tup, ok := st.Next(); ok; tup, ok = st.Next() {
				lines = append(lines, tupleLine(tup))
			}
			err = st.Err()
		}
		res.ParStreams++
		switch {
		case err != nil:
			res.ParFailed++
		case sortedDelivery(lines) != want[stmt]:
			res.ParCompleted++
			res.ParMismatched++
		default:
			res.ParCompleted++
		}
	}
	res.ParEngineStreams = pe.ParallelStats().Streams

	if res.ParStreams != res.ParCompleted+res.ParFailed {
		return fmt.Errorf("parallel leg books do not balance: %d != %d + %d",
			res.ParStreams, res.ParCompleted, res.ParFailed)
	}
	if res.ParMismatched > 0 {
		return fmt.Errorf("parallel leg: %d completed streams did not bag-match the fault-free delivery", res.ParMismatched)
	}
	if res.ParCompleted == 0 {
		return fmt.Errorf("parallel leg: kill rate %.2f starved every stream (%d attempted)", killRate, res.ParStreams)
	}
	if killRate > 0 && res.ParFailed == 0 {
		return fmt.Errorf("parallel leg: kill rate %.2f never failed a tokenless stream — the storm did not bite", killRate)
	}
	return nil
}

// tupleLine renders one tuple as a pipe-joined line.
func tupleLine(tup relation.Tuple) string {
	var sb strings.Builder
	for i, v := range tup {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(v.String())
	}
	return sb.String()
}

// stormClient is the storm's standard client stack: a health-managed pool of
// two connections under the full resilience policy. MaxRetries bounds
// consecutive ZERO-progress lives, not total kills: a severed connection can
// discard frames the client had not drained yet, so individual lives may
// strand nothing — the bound only needs to exceed any plausible run of them.
func stormClient(addr string, cfg StormConfig, seedOff int64) (*remotedb.ResilientClient, error) {
	poolSize := cfg.PoolSize
	if poolSize == 0 {
		poolSize = 2
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 50
	}
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:           poolSize,
		FrameTuples:    cfg.FrameTuples,
		Redial:         true,
		Costs:          remotedb.DefaultCosts(),
		HealthInterval: 10 * time.Millisecond,
		HealthSeed:     cfg.Seed + seedOff,
	})
	if err != nil {
		return nil, err
	}
	// BreakerFailures -1: the breaker exists for a REMOTE that is down, and
	// under a deliberate kill-everything storm it would (correctly, for its
	// own policy) open and fast-fail the very resumes under test. The storm
	// measures the repair machinery, so the breaker sits this one out; the
	// request-level chaos harness (chaos.go) keeps it engaged.
	// Real (but tiny) backoff: a no-op Sleep fires every retry inside the
	// same kill window — fifty instant attempts against a connection that is
	// mid-teardown prove nothing. Microsecond-scale spacing lets redials
	// land between kills while keeping the whole storm sub-second.
	return remotedb.NewResilientClient(p, remotedb.Resilience{
		JitterSeed:          cfg.Seed + seedOff,
		MaxRetries:          maxRetries,
		BreakerFailures:     -1,
		BaseBackoff:         200 * time.Microsecond,
		MaxBackoff:          2 * time.Millisecond,
		DisableStreamResume: cfg.DisableResume,
	}), nil
}
