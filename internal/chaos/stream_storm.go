package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// StormConfig parameterizes a mid-stream connection-kill storm: a real TCP
// server whose listener severs streamed-result connections after a few frames,
// hammered by concurrent consumers whose only defence is the resumable-stream
// machinery. It is the stream-level counterpart of Config, which injects
// request-level faults into an in-process client.
type StormConfig struct {
	// Workers is the number of concurrent raw-stream consumers.
	Workers int
	// StreamsPerWorker is how many streamed statements each worker drains.
	StreamsPerWorker int
	// Seed seeds every deterministic stream (statement choice, listener
	// faults, retry jitter).
	Seed int64
	// KillRate is the per-stream probability of the listener severing the
	// connection mid-stream.
	KillRate float64
	// KillAfter is the number of response frames delivered before the kill
	// (>= 2 guarantees at least one payload frame per life, so delivery
	// always makes progress and the storm terminates even at KillRate 1).
	KillAfter int
	// FrameTuples is the response frame size; small values maximize the
	// number of kill points per stream.
	FrameTuples int
	// Rows sizes the scanned table: more rows, more frames, more kills.
	Rows int
	// DisableResume turns the repair machinery off — the control arm: under
	// a storm the raw failure rate must then become visible to consumers.
	DisableResume bool
	// Sessions and QueriesPerSession size the CMS leg, which replays CAQL
	// queries through a pooled remote client against the same hostile
	// listener and asserts the dispatch-conservation invariant.
	Sessions          int
	QueriesPerSession int
	// PoolSize (0: 2) and MaxRetries (0: 50) scale the client stack with the
	// storm: every kill fails every stream multiplexed on the connection, so
	// more workers per connection means longer runs of zero-progress lives —
	// a bigger storm needs more connections and a higher no-progress bound.
	PoolSize   int
	MaxRetries int
}

// DefaultStormConfig is a storm in which roughly every stream dies at least
// once, sized to finish in well under a second for the per-PR smoke test.
func DefaultStormConfig() StormConfig {
	return StormConfig{
		Workers:           6,
		StreamsPerWorker:  8,
		Seed:              1,
		KillRate:          0.9,
		KillAfter:         2,
		FrameTuples:       4,
		Rows:              160,
		Sessions:          4,
		QueriesPerSession: 24,
	}
}

// StormResult summarizes one storm run.
type StormResult struct {
	Elapsed time.Duration
	// Streams / Completed / Failed account every raw-leg stream: attempted =
	// completed (drained to a nil terminal error) + failed.
	Streams   int64
	Completed int64
	Failed    int64
	// Mismatched counts completed streams whose delivery was not
	// byte-identical to the uninterrupted in-memory delivery — any nonzero
	// value is an exactly-once violation regardless of configuration.
	Mismatched int64
	// Resumes is the number of mid-stream repairs the client performed.
	Resumes int64
	// ServerKills / ServerResumes are the listener's own counters.
	ServerKills   int64
	ServerResumes int64
	// CMSStats is the CMS leg's dispatch accounting.
	CMSStats bridge.SourceStats
	// Errors samples raw-leg stream failures (capped) for diagnosis.
	Errors []string
}

// stormStatements returns the raw-leg statement set with its expected
// deliveries, computed from a private fault-free engine scan. Every statement
// is single-table and therefore streamable (carries a resume token).
func stormStatements(e *remotedb.Engine) (stmts []string, want map[string]string, err error) {
	stmts = []string{
		"SELECT v FROM big",
		"SELECT v FROM big WHERE k < 120",
		"SELECT k, v FROM big WHERE k >= 40",
		"SELECT * FROM big WHERE k < 150",
	}
	want = make(map[string]string, len(stmts))
	for _, s := range stmts {
		sc, ok := e.ExecuteSQLStream(s)
		if !ok {
			return nil, nil, fmt.Errorf("storm statement %q is not streamable", s)
		}
		var sb strings.Builder
		for tup, ok := sc.Next(); ok; tup, ok = sc.Next() {
			for i, v := range tup {
				if i > 0 {
					sb.WriteByte('|')
				}
				sb.WriteString(v.String())
			}
			sb.WriteByte('\n')
		}
		want[s] = sb.String()
	}
	return stmts, want, nil
}

// stormEngine builds the raw-leg table: big(k INT, v TEXT), rows in insertion
// order so the uninterrupted delivery is deterministic.
func stormEngine(rows int) (*remotedb.Engine, error) {
	e := remotedb.NewEngine()
	if _, _, err := e.ExecuteSQL("CREATE TABLE big (k INT, v TEXT)"); err != nil {
		return nil, err
	}
	const batch = 200
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO big VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,'v%d')", i, i)
		}
		if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// RunStorm executes one connection-kill storm and checks its invariants:
//
//   - exactly-once: every COMPLETED stream's delivery is byte-identical to
//     the uninterrupted delivery — no duplicates, no gaps, order preserved —
//     however many times its connections died (holds with resume on OR off);
//   - availability: with resume on and KillAfter >= 2, every stream
//     completes (the repair machinery hides every kill);
//   - conservation: the CMS leg's dispatch accounting balances and the CMS
//     still answers a fresh session afterwards.
//
// Goroutine accounting is left to the caller (before/after snapshots).
func RunStorm(cfg StormConfig) (StormResult, error) {
	var res StormResult
	e, err := stormEngine(cfg.Rows)
	if err != nil {
		return res, err
	}
	stmts, want, err := stormStatements(e)
	if err != nil {
		return res, err
	}

	srv := remotedb.NewServerWithOptions(e, remotedb.ServerOptions{
		FrameTuples: cfg.FrameTuples,
		Faults: &remotedb.ListenerFaults{
			Seed:            cfg.Seed,
			StreamKillRate:  cfg.KillRate,
			StreamKillAfter: cfg.KillAfter,
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	// ---- Leg 1: raw streams, byte-identical delivery under kills ----
	started := time.Now()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	rc, err := stormClient(addr, cfg, 0)
	if err != nil {
		return res, err
	}
	for wkr := 0; wkr < cfg.Workers; wkr++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wid)*104729))
			for n := 0; n < cfg.StreamsPerWorker; n++ {
				stmt := stmts[rng.Intn(len(stmts))]
				var sb strings.Builder
				st, err := rc.ExecStream(context.Background(), stmt)
				if err == nil {
					for tup, ok := st.Next(); ok; tup, ok = st.Next() {
						for i, v := range tup {
							if i > 0 {
								sb.WriteByte('|')
							}
							sb.WriteString(v.String())
						}
						sb.WriteByte('\n')
					}
					err = st.Err()
				}
				mu.Lock()
				res.Streams++
				switch {
				case err != nil:
					res.Failed++
					if len(res.Errors) < 8 {
						res.Errors = append(res.Errors, err.Error())
					}
				case sb.String() != want[stmt]:
					res.Completed++
					res.Mismatched++
				default:
					res.Completed++
				}
				mu.Unlock()
			}
		}(wkr)
	}
	wg.Wait()
	res.Resumes = rc.ResilienceStats().StreamResumes
	rc.Close()

	// ---- Leg 2: the CMS over the same hostile wire must keep its books ----
	if cfg.Sessions > 0 {
		w := workload.Chain(53, 400, 24)
		wsrv := remotedb.NewServerWithOptions(w.Engine(), remotedb.ServerOptions{
			FrameTuples: cfg.FrameTuples,
			Faults: &remotedb.ListenerFaults{
				Seed:            cfg.Seed + 1,
				StreamKillRate:  cfg.KillRate,
				StreamKillAfter: cfg.KillAfter,
			},
		})
		waddr, err := wsrv.Listen("127.0.0.1:0")
		if err != nil {
			return res, err
		}
		defer wsrv.Close()
		wrc, err := stormClient(waddr, cfg, 7)
		if err != nil {
			return res, err
		}
		// Zero Features: no caching at all, so EVERY query crosses the hostile
		// wire — maximum stream-kill exposure for the dispatch accounting.
		cms := cache.New(wrc, cache.Options{Costs: remotedb.DefaultCosts()})
		queries := []*caql.Query{
			caql.MustParse(`d1(Y) :- b1("c1", Y)`),
			caql.MustParse(`q2(X, Y) :- b2(X, Y) & Y != 3`),
			caql.MustParse(`q3(X, Z) :- b3(X, "c2", Z)`),
		}
		var cwg sync.WaitGroup
		for sid := 0; sid < cfg.Sessions; sid++ {
			cwg.Add(1)
			go func(sid int) {
				defer cwg.Done()
				s := cms.BeginSession(nil)
				defer s.End()
				for n := 0; n < cfg.QueriesPerSession; n++ {
					stream, err := s.QueryCtx(context.Background(), queries[n%len(queries)])
					if err != nil {
						continue // accounted as Failed; conservation checks the books
					}
					stream.Drain("out")
				}
			}(sid)
		}
		cwg.Wait()
		res.CMSStats = cms.Stats()
		wrc.Close()

		if !res.CMSStats.DispatchConserved() {
			return res, fmt.Errorf("storm: CMS dispatch accounting violated: Queries=%d != Completed=%d + Canceled=%d + DeadlineExceeded=%d + Shed=%d + Failed=%d",
				res.CMSStats.Queries, res.CMSStats.Completed, res.CMSStats.Canceled,
				res.CMSStats.DeadlineExceeded, res.CMSStats.Shed, res.CMSStats.Failed)
		}
	}
	res.Elapsed = time.Since(started)
	ss := srv.ServerStats()
	res.ServerKills = ss.StreamKills
	res.ServerResumes = ss.StreamResumes

	// Exactly-once holds unconditionally: resume machinery may fail a stream,
	// never corrupt one.
	if res.Mismatched > 0 {
		return res, fmt.Errorf("storm: %d completed streams were not byte-identical to the uninterrupted delivery", res.Mismatched)
	}
	if !cfg.DisableResume {
		if res.Failed > 0 {
			return res, fmt.Errorf("storm: %d/%d streams failed despite resume being enabled, e.g. %s",
				res.Failed, res.Streams, strings.Join(res.Errors, "; "))
		}
		if cfg.KillRate > 0 && res.Resumes == 0 {
			return res, fmt.Errorf("storm: kill rate %.2f produced zero resumes — the storm did not bite", cfg.KillRate)
		}
	}
	return res, nil
}

// stormClient is the storm's standard client stack: a health-managed pool of
// two connections under the full resilience policy. MaxRetries bounds
// consecutive ZERO-progress lives, not total kills: a severed connection can
// discard frames the client had not drained yet, so individual lives may
// strand nothing — the bound only needs to exceed any plausible run of them.
func stormClient(addr string, cfg StormConfig, seedOff int64) (*remotedb.ResilientClient, error) {
	poolSize := cfg.PoolSize
	if poolSize == 0 {
		poolSize = 2
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = 50
	}
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:           poolSize,
		FrameTuples:    cfg.FrameTuples,
		Redial:         true,
		Costs:          remotedb.DefaultCosts(),
		HealthInterval: 10 * time.Millisecond,
		HealthSeed:     cfg.Seed + seedOff,
	})
	if err != nil {
		return nil, err
	}
	// BreakerFailures -1: the breaker exists for a REMOTE that is down, and
	// under a deliberate kill-everything storm it would (correctly, for its
	// own policy) open and fast-fail the very resumes under test. The storm
	// measures the repair machinery, so the breaker sits this one out; the
	// request-level chaos harness (chaos.go) keeps it engaged.
	// Real (but tiny) backoff: a no-op Sleep fires every retry inside the
	// same kill window — fifty instant attempts against a connection that is
	// mid-teardown prove nothing. Microsecond-scale spacing lets redials
	// land between kills while keeping the whole storm sub-second.
	return remotedb.NewResilientClient(p, remotedb.Resilience{
		JitterSeed:          cfg.Seed + seedOff,
		MaxRetries:          maxRetries,
		BreakerFailures:     -1,
		BaseBackoff:         200 * time.Microsecond,
		MaxBackoff:          2 * time.Millisecond,
		DisableStreamResume: cfg.DisableResume,
	}), nil
}
