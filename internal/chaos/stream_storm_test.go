package chaos

import (
	"flag"
	"runtime"
	"testing"
	"time"
)

// -chaos.long scales the storm up for the scheduled nightly soak (several
// minutes of kill storms); the default sizing is the per-PR smoke test.
var chaosLong = flag.Bool("chaos.long", false, "run the extended nightly stream-kill soak")

func stormLeakCheck(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+3 {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before+3 {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak after storm: before=%d now=%d\n%s", before, now, buf[:n])
	}
}

// TestStreamKillStorm: concurrent consumers against a listener that severs
// almost every streamed result mid-flight. With resume on, every stream must
// complete, every completed delivery must be byte-identical to the
// uninterrupted one, the CMS dispatch books must balance, and no goroutines
// may leak.
func TestStreamKillStorm(t *testing.T) {
	if *chaosShort {
		t.Skip("-chaos.short")
	}
	before := runtime.NumGoroutine()
	cfg := DefaultStormConfig()
	if *chaosLong {
		cfg.Workers = 12
		cfg.StreamsPerWorker = 120
		cfg.Rows = 400
		cfg.Sessions = 8
		cfg.QueriesPerSession = 150
		cfg.KillRate = 1.0
		cfg.ParallelStreams = 400
		// 6× the workers per client means 6× the collateral stream deaths
		// per connection kill: spread the load over more connections and
		// give the no-progress bound the same headroom.
		cfg.PoolSize = 6
		cfg.MaxRetries = 400
	}
	res, err := RunStorm(cfg)
	if err != nil {
		t.Fatalf("storm invariants violated: %v\n%+v", err, res)
	}
	if res.ServerKills == 0 {
		t.Fatalf("storm never killed a stream: %+v", res)
	}
	if res.Completed != res.Streams {
		t.Fatalf("resume on, yet only %d/%d streams completed", res.Completed, res.Streams)
	}
	// The parallel leg must have exercised the worker pool for real: the
	// engine's own counter says how many executions ran on it (warmup plus
	// every wire stream that got far enough to open a plan).
	if res.ParEngineStreams == 0 {
		t.Fatalf("parallel leg never ran on the morsel worker pool: %+v", res)
	}
	t.Logf("storm: %d streams, %d client resumes, %d server kills in %v; parallel leg %d streams (%d completed, %d killed, %d pool executions)",
		res.Streams, res.Resumes, res.ServerKills, res.Elapsed,
		res.ParStreams, res.ParCompleted, res.ParFailed, res.ParEngineStreams)
	stormLeakCheck(t, before)
}

// TestStreamKillStormDeterministic: same config, same seed — same outcome
// counts. The storm is a reproducer, not a flake generator.
func TestStreamKillStormDeterministic(t *testing.T) {
	if *chaosShort {
		t.Skip("-chaos.short")
	}
	cfg := DefaultStormConfig()
	cfg.Sessions = 0 // raw leg only: the CMS leg's timing is not part of the claim
	a, err := RunStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Streams != b.Streams || a.Completed != b.Completed || a.Failed != b.Failed || a.Mismatched != b.Mismatched {
		t.Fatalf("same seed, different outcome books:\n%+v\n%+v", a, b)
	}
	if a.ParStreams != b.ParStreams || a.ParCompleted != b.ParCompleted || a.ParFailed != b.ParFailed {
		t.Fatalf("same seed, different parallel-leg books:\n%+v\n%+v", a, b)
	}
}

// TestStreamKillStormResumeOffDegrades is the control arm: with the repair
// machinery disabled the same storm must surface failures to consumers — if
// it does not, the storm proves nothing about resume.
func TestStreamKillStormResumeOffDegrades(t *testing.T) {
	if *chaosShort {
		t.Skip("-chaos.short")
	}
	before := runtime.NumGoroutine()
	cfg := DefaultStormConfig()
	cfg.DisableResume = true
	cfg.KillRate = 1.0
	cfg.Sessions = 0
	res, err := RunStorm(cfg)
	if err != nil {
		t.Fatalf("exactly-once must hold even with resume off: %v\n%+v", err, res)
	}
	if res.Failed == 0 {
		t.Fatalf("kill-everything storm with resume off completed all %d streams — storm not biting", res.Streams)
	}
	if res.Resumes != 0 {
		t.Fatalf("resume disabled but client reported %d resumes", res.Resumes)
	}
	stormLeakCheck(t, before)
}
