package chaos

import (
	"flag"
	"runtime"
	"testing"
	"time"
)

// -chaos.short shrinks the soak for CI smoke jobs (also implied by -short).
var chaosShort = flag.Bool("chaos.short", false, "run a reduced chaos soak (CI smoke)")

// TestChaosSoak storms a shared CMS with faulty remotes, caller cancels, and
// deadline storms, then asserts the robustness invariants: conservation,
// typed errors, shard health (inside Run), and no goroutine leaks (here).
func TestChaosSoak(t *testing.T) {
	cfg := DefaultConfig()
	if *chaosShort || testing.Short() {
		cfg.Sessions = 4
		cfg.QueriesPerSession = 30
		// Fewer queries sample the fault stream less, so raise the rates to
		// keep every recovery path exercised in the reduced soak.
		cfg.Faults.ErrorRate = 0.10
		cfg.Faults.PanicRate = 0.06
		cfg.CancelRate = 0.20
		cfg.DeadlineRate = 0.25
	}
	before := runtime.NumGoroutine()

	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("soak invariant violated: %v\nstats: %+v", err, res.Stats)
	}
	// Stats are snapshotted at quiescence, before the health probe runs.
	wantQueries := int64(cfg.Sessions * cfg.QueriesPerSession)
	if res.Stats.Queries != wantQueries {
		t.Fatalf("issued %d queries, want %d", res.Stats.Queries, wantQueries)
	}
	// The storm must actually have exercised the paths it claims to cover.
	if res.Faults.Errors+res.Faults.Drops == 0 {
		t.Error("no transport faults were injected; storm too weak")
	}
	if res.Faults.Panics == 0 {
		t.Error("no panics were injected; storm too weak")
	}
	if res.Stats.Canceled+res.Stats.DeadlineExceeded == 0 {
		t.Error("no query was canceled or deadline-exceeded; storm too weak")
	}
	if res.Stats.Completed == 0 {
		t.Error("no query completed; storm too strong to be meaningful")
	}
	t.Logf("soak: %d queries in %v: completed=%d canceled=%d deadline=%d shed=%d failed=%d panics-recovered=%d drained=%d tuples",
		res.Stats.Queries, res.Elapsed.Round(time.Millisecond),
		res.Stats.Completed, res.Stats.Canceled, res.Stats.DeadlineExceeded,
		res.Stats.Shed, res.Stats.Failed, res.Stats.PanicsRecovered, res.Drained)

	// Goroutine accounting: sessions were Ended and prefetch workers joined,
	// so the count must settle back to the baseline (small slack for runtime
	// background goroutines; retries let abandoned timers unwind).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosDeterministicOutcomes checks that the soak is reproducible enough
// to debug: the same seed yields the same fault stream (per-caller timing
// still varies, so only the injected-fault tallies are compared).
func TestChaosDeterministicOutcomes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sessions = 2
	cfg.QueriesPerSession = 20
	cfg.CancelRate = 0 // timing-dependent; exclude from the determinism claim
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Queries != b.Stats.Queries {
		t.Fatalf("query counts diverged: %d vs %d", a.Stats.Queries, b.Stats.Queries)
	}
}
