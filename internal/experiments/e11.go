package experiments

import (
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E11FaultTolerance drives the Example 1 session through a deterministically
// seeded FaultClient at increasing transport fault rates, with the
// ResilientClient (retries + circuit breaker) between the CMS and the faults.
// The paper's remote DBMS is "realized on a separate system" (Section 5.5) —
// this experiment measures what the cache layer buys when that system
// misbehaves: retried requests absorb transient faults, and a warm cache
// keeps answering subsumable queries even as remote failures mount.
func E11FaultTolerance() *Table {
	t := &Table{
		ID:     "E11",
		Title:  "fault tolerance: hit rate and failures vs injected fault rate",
		Claim:  "retries absorb transient remote faults and the warm cache degrades gracefully — answered queries fall off far slower than the fault rate rises",
		Header: []string{"faultRate", "queries", "answered", "failed", "hits", "remote", "retries", "failures", "opens", "answered%"},
	}
	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		st, queries, failed := RunE11(rate)
		answered := queries - failed
		t.AddRow(fp(rate), fi(int64(queries)), fi(int64(answered)), fi(int64(failed)),
			fi(st.CacheHits+st.PartialHits), fi(st.RemoteRequests),
			fi(st.Retries), fi(st.RemoteFailures), fi(st.BreakerOpens),
			fp(float64(answered)/float64(queries)))
	}
	t.Notes = append(t.Notes,
		"faults are injected client-side from a fixed seed (reproducible); retries use zero-sleep backoff so the table is fast",
		"cache-served queries never touch the faulty transport, so the answered rate stays above 1-faultRate")
	return t
}

// RunE11 runs the fault-tolerance session at the given injected fault rate,
// returning the CMS stats plus how many of the session's queries were issued
// and how many failed despite retries.
func RunE11(rate float64) (st bridge.SourceStats, queries, failed int) {
	w := workload.Chain(53, 700, 24)
	costs := remotedb.DefaultCosts()
	noSleep := func(time.Duration) {}
	fc := remotedb.NewFaultClient(remotedb.NewInProcClient(w.Engine(), costs), remotedb.FaultConfig{
		Seed:      911,
		ErrorRate: rate * 0.75,
		DropRate:  rate * 0.25,
		Sleep:     noSleep,
	})
	rc := remotedb.NewResilientClient(fc, remotedb.Resilience{
		MaxRetries:      2,
		BaseBackoff:     time.Millisecond,
		JitterSeed:      7,
		BreakerFailures: 5,
		BreakerCooldown: time.Millisecond,
		Sleep:           noSleep,
	})
	cms := cache.New(rc, cache.Options{
		Features: cache.AllFeatures(), Costs: costs, ThinkTimeMS: 100, PredictHorizon: 16,
	})
	adv := advice.MustParse(e4Advice)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	run := func(q *caql.Query) {
		queries++
		stream, err := s.Query(q)
		if err != nil {
			failed++
			return
		}
		stream.Drain("out")
	}

	// The E10 session shape: d1 once, (d2, d3) instance pairs, an exact
	// repeat, and decomposable joins — now under fire.
	run(caql.MustParse(`d1(Y) :- b1("c1", Y)`))
	d2t := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	d3t := caql.MustParse(`d3(X, Y) :- b3(X, "c3", Z) & b1(Z, Y)`)
	for c := 0; c < 6; c++ {
		bind := map[string]relation.Value{"Y": relation.Int(int64(c))}
		run(d2t.Instantiate(bind))
		run(d3t.Instantiate(bind))
	}
	run(caql.MustParse(`d1(Y) :- b1("c1", Y)`)) // exact repeat
	run(caql.MustParse(`j1(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 1`))
	run(caql.MustParse(`j2(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 2`))

	return cms.Stats(), queries, failed
}
