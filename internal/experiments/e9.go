package experiments

import (
	"fmt"
	"time"

	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/subsume"
)

// E9SubsumptionOverhead addresses Section 5.3.3's concern that the richer
// optimization "naturally involves some significant overhead": it measures
// the wall-clock cost of a subsumption pass over a growing cache (find the
// relevant elements for a query, derive from the best) against the simulated
// cost of the remote round trip the pass avoids.
func E9SubsumptionOverhead() *Table {
	t := &Table{
		ID:     "E9",
		Title:  "subsumption-check cost vs cache population",
		Claim:  "the subsumption pass is cheap relative to the remote access it avoids (Section 5.3.3)",
		Header: []string{"elements", "checks/query", "time/query", "vs 50ms round trip"},
	}
	for _, n := range []int{10, 100, 1000} {
		res := RunE9(n)
		t.AddRow(fi(int64(n)), fi(int64(n)), res.perQuery.String(),
			fmt.Sprintf("%.4fx", res.perQuery.Seconds()*1000/50))
	}
	t.Notes = append(t.Notes, "checks are pure CPU; even a 1000-element cache costs a small fraction of one round trip")
	return t
}

type e9Result struct {
	perQuery time.Duration
}

// E9Elements builds n synthetic cache-element definitions over the chain
// schema (exported for the benchmark harness).
func E9Elements(n int) []*caql.Query {
	out := make([]*caql.Query, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, caql.MustParse(fmt.Sprintf(`e%d(X, Z) :- b3(X, "c2", Z) & X >= %d`, i, i%7)))
		case 1:
			out = append(out, caql.MustParse(fmt.Sprintf(`e%d(X, Y, Z) :- b3(X, Y, Z) & Z < %d`, i, 40+i%9)))
		case 2:
			out = append(out, caql.MustParse(fmt.Sprintf(`e%d(X, W) :- b2(X, Z) & b3(Z, "c2", W)`, i)))
		default:
			out = append(out, caql.MustParse(fmt.Sprintf(`e%d(Z) :- b3(%d, "c2", Z)`, i, i%11)))
		}
	}
	return out
}

// E9Query is the probe query used against the element population.
func E9Query() *caql.Query {
	return caql.MustParse(`q(X, Z) :- b3(X, "c2", Z) & X >= 3 & X < 20`)
}

// RunE9 times a full subsumption pass over n cache-element definitions.
func RunE9(n int) e9Result {
	elements := E9Elements(n)
	q := E9Query()
	// Warm-up pass, then timed passes.
	pass := func() {
		for _, e := range elements {
			subsume.DeriveFull(e, q)
		}
	}
	pass()
	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		pass()
	}
	return e9Result{perQuery: time.Since(start) / iters}
}

// E9DeriveApply exercises a full derive-and-apply cycle for the benchmark
// harness: the returned relation is the derived answer from a synthetic
// extension.
func E9DeriveApply(ext *relation.Relation) *relation.Relation {
	e := caql.MustParse(`e(X, Y, Z) :- b3(X, Y, Z)`)
	q := caql.MustParse(`q(X, Z) :- b3(X, "c2", Z) & X >= 3`)
	d, ok := subsume.DeriveFull(e, q)
	if !ok {
		panic("E9: derivation must succeed")
	}
	schema := relation.NewSchema(
		relation.Attr{Name: "X", Kind: relation.KindInt},
		relation.Attr{Name: "Z", Kind: relation.KindInt})
	out, err := d.Apply("q", schema, ext)
	if err != nil {
		panic(err)
	}
	return out
}
