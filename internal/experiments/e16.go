package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/relation"
	"repro/internal/remotedb"
)

// E16 measures the cost-based optimizer and the pipelined execution of
// joins and aggregates over the framed (wire v2) stream transport.
//
// Part A — first-tuple latency by query shape. A client streams three
// query shapes over TCP: a single-table scan (the resumable ScanStream
// baseline), a two-table join, and a grouped aggregate. With the optimizer
// on, the join runs as a pipelined hash join (build the small side, probe
// the streaming large side), so the first joined tuple ships after one
// frame of probe work; with the optimizer off the server deliberately falls
// back to the materializing executor and the first tuple waits for the
// whole result. The grouped aggregate is pipeline-breaking either way (the
// hash table must see all input), so it bounds what streaming can buy.
//
// Part B — optimizer effect on server work. The same join with LIMIT 10
// short-circuits the probe stream after ten output tuples; the unlimited
// join pays the full probe. The ops ratio is the short-circuit win. The
// optimizer-off arm of the limited join shows the materializing executor
// paying the full join cost before discarding all but ten tuples.
//
// Part C — plan cache. A workload of a few distinct statements repeated
// many times (the CMS re-issuing translated CAQL shapes) should compile
// each statement once: the hit rate is hits/(hits+misses) over the run.

// E16Shape is one Part A measurement: a query shape under one optimizer
// setting, with median first-tuple and drain latencies and the server-side
// tuple-operation count (the virtual cost model's ops) for one execution.
type E16Shape struct {
	Shape        string  `json:"shape"`     // "scan" | "join" | "agg"
	Optimizer    string  `json:"optimizer"` // "on" | "off"
	FirstTupleUS int64   `json:"first_tuple_us"`
	DrainUS      int64   `json:"drain_us"`
	Tuples       int64   `json:"tuples"`
	Ops          int64   `json:"ops"`     // server tuple operations (one run)
	SimMS        float64 `json:"sim_ms"`  // virtual cost: RequestCost(tuples, ops)
	EstCost      float64 `json:"est_sim"` // optimizer's estimate (0 when off/unplanned)
}

// E16Data is the machine-readable result of the whole experiment
// (braid-bench -json writes it as part of BENCH_PR7.json).
type E16Data struct {
	Experiment string     `json:"experiment"`
	OrderRows  int        `json:"order_rows"`
	CustRows   int        `json:"cust_rows"`
	Shapes     []E16Shape `json:"shapes"`

	// JoinVsScanFirstTuple is join(on) / scan(on) first-tuple latency; the
	// pipelined join should stay within 5x of the raw streaming scan.
	JoinVsScanFirstTuple float64 `json:"join_vs_scan_first_tuple"`
	// JoinFirstTupleSpeedup is join(off) / join(on): what pipelining buys
	// over the materializing executor for the same statement.
	JoinFirstTupleSpeedup float64 `json:"join_first_tuple_speedup"`

	// Part B: server ops for the LIMIT 10 join (optimizer on / off) and for
	// the unlimited join (optimizer on).
	LimitJoinOpsOn   int64   `json:"limit_join_ops_on"`
	LimitJoinOpsOff  int64   `json:"limit_join_ops_off"`
	FullJoinOpsOn    int64   `json:"full_join_ops_on"`
	LimitJoinOpsCut  float64 `json:"limit_join_ops_cut"`  // full(on) / limit(on)
	LimitJoinOpsWin  float64 `json:"limit_join_ops_win"`  // limit(off) / limit(on)
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"` // Part C
	PlanCacheStmts   int     `json:"plan_cache_stmts"`
	PlanCacheExecs   int     `json:"plan_cache_execs"`
}

// e16Tables builds the workload: orders (the large probe side), customers
// (the small build side), and an index on customers.id so point access into
// the build table is index-ranged. Row contents are a fixed LCG so every
// run sees the same distribution: cust is ~uniform over the customer keys,
// grp has 50 distinct values, amt is a float payload.
func e16Tables(eng *remotedb.Engine, orderRows, custRows int) error {
	cu := relation.New("customers", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "cname", Kind: relation.KindString},
		relation.Attr{Name: "region", Kind: relation.KindInt}))
	for i := 0; i < custRows; i++ {
		cu.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Str(fmt.Sprintf("cust-%04d", i)),
			relation.Int(int64(i % 10)),
		})
	}
	eng.LoadTable(cu)

	po := relation.New("orders", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "cust", Kind: relation.KindInt},
		relation.Attr{Name: "grp", Kind: relation.KindInt},
		relation.Attr{Name: "amt", Kind: relation.KindFloat}))
	po.Grow(orderRows)
	seed := uint64(16)
	for i := 0; i < orderRows; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		po.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(seed>>33) % int64(custRows)),
			relation.Int(int64(i % 50)),
			relation.Float(float64(i%997) / 7.0),
		})
	}
	eng.LoadTable(po)
	return eng.CreateIndex("customers", []int{0})
}

const (
	e16Scan = "SELECT id, amt FROM orders WHERE grp < 25"
	e16Join = "SELECT orders.id, customers.cname FROM orders, customers " +
		"WHERE orders.cust = customers.id"
	e16Agg = "SELECT grp, COUNT(*), SUM(amt) FROM orders GROUP BY grp"
)

// e16Measure streams sql through the pool client and returns the median
// first-tuple and drain latencies plus the result cardinality.
func e16Measure(p *remotedb.PoolClient, sql string, iters int) (first, drain time.Duration, tuples int64, err error) {
	run := func() (f, d time.Duration, n int64, err error) {
		t0 := time.Now()
		st, err := p.ExecStream(context.Background(), sql)
		if err != nil {
			return 0, 0, 0, err
		}
		for {
			_, ok := st.Next()
			if !ok {
				break
			}
			if n == 0 {
				f = time.Since(t0)
			}
			n++
		}
		return f, time.Since(t0), n, st.Err()
	}
	if _, _, _, err := run(); err != nil { // warm up (gob types, pool conn)
		return 0, 0, 0, err
	}
	firsts := make([]time.Duration, 0, iters)
	drains := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		f, d, n, err := run()
		if err != nil {
			return 0, 0, 0, err
		}
		firsts = append(firsts, f)
		drains = append(drains, d)
		tuples = n
	}
	med := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		return ds[len(ds)/2]
	}
	return med(firsts), med(drains), tuples, nil
}

// e16Ops executes sql directly on the engine and returns the server-side
// tuple-operation count and result cardinality under the current optimizer
// setting.
func e16Ops(eng *remotedb.Engine, sql string) (ops, tuples int64, err error) {
	rel, ops, err := eng.ExecuteSQL(sql)
	if err != nil {
		return 0, 0, err
	}
	return ops, int64(rel.Len()), nil
}

// e16Shape measures one (shape, optimizer) arm: streamed latency over TCP
// plus engine-side ops for the virtual cost.
func e16Shape(eng *remotedb.Engine, p *remotedb.PoolClient, shape, sql string, on bool, iters int) (E16Shape, error) {
	eng.SetOptimizer(on)
	opt := "off"
	if on {
		opt = "on"
	}
	first, drain, tuples, err := e16Measure(p, sql, iters)
	if err != nil {
		return E16Shape{}, fmt.Errorf("%s/%s: %w", shape, opt, err)
	}
	ops, _, err := e16Ops(eng, sql)
	if err != nil {
		return E16Shape{}, fmt.Errorf("%s/%s ops: %w", shape, opt, err)
	}
	s := E16Shape{
		Shape:        shape,
		Optimizer:    opt,
		FirstTupleUS: first.Microseconds(),
		DrainUS:      drain.Microseconds(),
		Tuples:       tuples,
		Ops:          ops,
		SimMS:        remotedb.DefaultCosts().RequestCost(tuples, ops),
	}
	if on {
		if pl, err := eng.PlanForSQL(sql); err == nil {
			s.EstCost = pl.EstCost(remotedb.DefaultCosts())
		}
	}
	return s, nil
}

// RunE16 runs all three parts at the given scale.
func RunE16(orderRows, custRows, iters int) (*E16Data, error) {
	data := &E16Data{
		Experiment: "E16 cost-based optimizer and pipelined joins",
		OrderRows:  orderRows,
		CustRows:   custRows,
	}
	eng := remotedb.NewEngine()
	if err := e16Tables(eng, orderRows, custRows); err != nil {
		return nil, err
	}
	srv := remotedb.NewServerWithOptions(eng, remotedb.ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:        1,
		FrameTuples: 512,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	// Part A: each shape under both optimizer settings. The scan arm does
	// not depend on the optimizer (the resumable ScanStream path serves it
	// either way); it is measured under both settings anyway as a control.
	type arm struct {
		shape string
		sql   string
		on    bool
	}
	arms := []arm{
		{"scan", e16Scan, true}, {"scan", e16Scan, false},
		{"join", e16Join, true}, {"join", e16Join, false},
		{"agg", e16Agg, true}, {"agg", e16Agg, false},
	}
	byKey := map[string]E16Shape{}
	for _, a := range arms {
		s, err := e16Shape(eng, p, a.shape, a.sql, a.on, iters)
		if err != nil {
			return nil, err
		}
		data.Shapes = append(data.Shapes, s)
		byKey[s.Shape+"/"+s.Optimizer] = s
	}
	eng.SetOptimizer(true)
	if sc, jn := byKey["scan/on"], byKey["join/on"]; sc.FirstTupleUS > 0 {
		data.JoinVsScanFirstTuple = float64(jn.FirstTupleUS) / float64(sc.FirstTupleUS)
	}
	if on, off := byKey["join/on"], byKey["join/off"]; on.FirstTupleUS > 0 {
		data.JoinFirstTupleSpeedup = float64(off.FirstTupleUS) / float64(on.FirstTupleUS)
	}

	// Part B: LIMIT-over-join ops, optimizer on vs off, plus the unlimited
	// join for the short-circuit ratio.
	limitJoin := e16Join + " LIMIT 10"
	eng.SetOptimizer(true)
	if data.LimitJoinOpsOn, _, err = e16Ops(eng, limitJoin); err != nil {
		return nil, err
	}
	if data.FullJoinOpsOn, _, err = e16Ops(eng, e16Join); err != nil {
		return nil, err
	}
	eng.SetOptimizer(false)
	if data.LimitJoinOpsOff, _, err = e16Ops(eng, limitJoin); err != nil {
		return nil, err
	}
	eng.SetOptimizer(true)
	if data.LimitJoinOpsOn > 0 {
		data.LimitJoinOpsCut = float64(data.FullJoinOpsOn) / float64(data.LimitJoinOpsOn)
		data.LimitJoinOpsWin = float64(data.LimitJoinOpsOff) / float64(data.LimitJoinOpsOn)
	}

	// Part C: plan cache hit rate over a repeated workload. Hit/miss
	// counters are cumulative on the engine, so the rate is computed from
	// deltas around the workload.
	stmts := []string{
		e16Scan, e16Join, e16Agg, limitJoin,
		"SELECT * FROM customers WHERE region = 3",
		"SELECT cust, COUNT(*) FROM orders GROUP BY cust ORDER BY cust LIMIT 20",
		"SELECT orders.id, customers.region FROM orders, customers " +
			"WHERE orders.cust = customers.id AND customers.region = 1 LIMIT 50",
		"SELECT DISTINCT grp FROM orders ORDER BY grp",
	}
	const reps = 50
	before := eng.PlanCacheStats()
	for r := 0; r < reps; r++ {
		for _, s := range stmts {
			if _, _, err := eng.ExecuteSQL(s); err != nil {
				return nil, fmt.Errorf("plan-cache workload %q: %w", s, err)
			}
		}
	}
	after := eng.PlanCacheStats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits+misses > 0 {
		data.PlanCacheHitRate = float64(hits) / float64(hits+misses)
	}
	data.PlanCacheStmts = len(stmts)
	data.PlanCacheExecs = len(stmts) * reps
	return data, nil
}

// RunE16Bench runs E16 at the braid-bench default scale: a 40k-row probe
// table against a 500-row build table, large enough that materializing the
// join before the first tuple is visibly slower than pipelining it.
func RunE16Bench() (*E16Data, error) {
	return RunE16(40000, 500, 5)
}

// E16Render formats the measurement as the experiment table.
func E16Render(d *E16Data) *Table {
	t := &Table{
		ID:    "E16",
		Title: "cost-based optimizer: pipelined joins, plan cache",
		Claim: "a cost-based plan pipelines joins over the stream transport (first joined tuple in O(frame), not O(result)), LIMIT short-circuits the probe, and a plan cache makes repeated statements compile-free",
		Header: []string{"shape", "opt", "firstTuple(us)", "drain(us)", "tuples",
			"serverOps", "sim(ms)", "est(ms)"},
	}
	for _, s := range d.Shapes {
		est := "-"
		if s.EstCost > 0 {
			est = ff(s.EstCost)
		}
		t.AddRow(s.Shape, s.Optimizer, fi(s.FirstTupleUS), fi(s.DrainUS),
			fi(s.Tuples), fi(s.Ops), ff(s.SimMS), est)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("orders=%d customers=%d; join(on) first tuple is %.1fx the streaming scan (acceptance: <= 5x) and %.1fx faster than the materializing join(off)",
			d.OrderRows, d.CustRows, d.JoinVsScanFirstTuple, d.JoinFirstTupleSpeedup),
		fmt.Sprintf("LIMIT 10 over the join: %d ops vs %d unlimited (%.0fx cut by short-circuiting the probe); materializing executor pays %d ops for the same LIMIT (%.1fx)",
			d.LimitJoinOpsOn, d.FullJoinOpsOn, d.LimitJoinOpsCut, d.LimitJoinOpsOff, d.LimitJoinOpsWin),
		fmt.Sprintf("plan cache: %d distinct statements x %d executions -> hit rate %.1f%% (acceptance: >= 90%%)",
			d.PlanCacheStmts, d.PlanCacheExecs/d.PlanCacheStmts, 100*d.PlanCacheHitRate),
		"the grouped aggregate is pipeline-breaking under both settings (the hash table must see all input), so its first-tuple gap bounds what pipelining can buy")
	return t
}

// E16PlannerStreaming runs the experiment at default scale for the bench
// registry. Measurement errors surface as a note rather than a panic so one
// flaky environment does not take down the whole suite.
func E16PlannerStreaming() *Table {
	d, err := RunE16Bench()
	if err != nil {
		return &Table{ID: "E16", Title: "cost-based optimizer (failed)",
			Header: []string{"error"}, Rows: [][]string{{err.Error()}}}
	}
	return E16Render(d)
}
