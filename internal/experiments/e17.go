package experiments

import (
	"fmt"

	"repro/internal/obs"
)

// E17 prices the observability layer (PR 8): the E12 concurrent-session
// workload runs three times on identical data, varying only the
// instrumentation attached to the shared CMS —
//
//   - off:     no tracer, no metrics registry (the PR-7 configuration);
//   - sampled: tracing 1-in-100 queries plus the full metrics registry
//     (the recommended production setting);
//   - full:    tracing every query plus the metrics registry (the debugging
//     setting, the worst case the layer can cost).
//
// Metrics are read-through (CounterFunc over the atomics the code already
// maintains), so their steady-state cost is near zero; tracing pays an
// atomic sampler check per span site when a query is unsampled, and span
// allocation + ring insertion when it is. The acceptance bar is that the
// sampled arm's p99 stays within 5% of the off arm.

// e17SampleEvery is the sampled arm's rate: one traced query in N.
const e17SampleEvery = 100

// E17Arm is one instrumentation setting's best-of-rounds measurement.
type E17Arm struct {
	Arm         string  `json:"arm"`          // "off" | "sampled" | "full"
	SampleEvery int     `json:"sample_every"` // 0: tracing off; 1: every query
	QPS         float64 `json:"qps"`          // best round
	P50US       int64   `json:"p50_us"`       // best (lowest) round
	P99US       int64   `json:"p99_us"`       // best (lowest) round
	Queries     int64   `json:"queries"`      // per round, identical across arms
}

// E17Data is the machine-readable result (braid-bench -json writes it as
// part of BENCH_PR8.json; CI diffs the sampled overhead against 5%).
type E17Data struct {
	Experiment string   `json:"experiment"`
	Sessions   int      `json:"sessions"`
	Rounds     int      `json:"rounds"`
	Arms       []E17Arm `json:"arms"`

	// Overheads are p99(arm)/p99(off) - 1 as a percentage, clamped at 0
	// (a faster instrumented round is noise, not a negative cost).
	SampledOverheadP99Pct float64 `json:"sampled_overhead_p99_pct"`
	FullOverheadP99Pct    float64 `json:"full_overhead_p99_pct"`
}

// RunE17Bench measures all three arms. Rounds interleave (off, sampled,
// full, off, sampled, full, ...) so slow machine phases — GC, CI neighbors —
// spread across arms instead of biasing one, and each arm keeps its best
// round (minimum p99), the standard noise filter for overhead measurement.
func RunE17Bench() (*E17Data, error) {
	const sessions, rounds = 4, 5
	type armSpec struct {
		name        string
		sampleEvery int
	}
	specs := []armSpec{{"off", 0}, {"sampled", e17SampleEvery}, {"full", 1}}
	arms := make([]E17Arm, len(specs))
	for i, sp := range specs {
		arms[i] = E17Arm{Arm: sp.name, SampleEvery: sp.sampleEvery}
	}

	for round := 0; round < rounds; round++ {
		for i, sp := range specs {
			var tr *obs.Tracer
			var reg *obs.Registry
			if sp.sampleEvery > 0 {
				tr = obs.NewTracer(sp.sampleEvery, 1024)
				reg = obs.NewRegistry()
			}
			r := runE12Instrumented(sessions, tr, reg)
			a := &arms[i]
			a.Queries = r.Stats.Queries
			if round == 0 || r.P99.Microseconds() < a.P99US {
				a.P99US = r.P99.Microseconds()
			}
			if round == 0 || r.P50.Microseconds() < a.P50US {
				a.P50US = r.P50.Microseconds()
			}
			if r.QPS > a.QPS {
				a.QPS = r.QPS
			}
		}
	}

	overhead := func(arm, off int64) float64 {
		if off <= 0 {
			return 0
		}
		pct := 100 * (float64(arm)/float64(off) - 1)
		if pct < 0 {
			return 0
		}
		return pct
	}
	d := &E17Data{
		Experiment: "E17",
		Sessions:   sessions,
		Rounds:     rounds,
		Arms:       arms,
	}
	d.SampledOverheadP99Pct = overhead(arms[1].P99US, arms[0].P99US)
	d.FullOverheadP99Pct = overhead(arms[2].P99US, arms[0].P99US)
	return d, nil
}

// E17Render formats a measured run as the experiment table.
func E17Render(d *E17Data) *Table {
	t := &Table{
		ID:     "E17",
		Title:  "observability overhead on the E12 concurrent workload",
		Claim:  "read-through metrics plus 1% trace sampling cost <= 5% p99 over the uninstrumented CMS; even tracing every query stays a debugging-grade, not prohibitive, overhead",
		Header: []string{"arm", "trace 1-in-N", "QPS", "p50(us)", "p99(us)", "p99 overhead"},
	}
	for _, a := range d.Arms {
		sample := "off"
		if a.SampleEvery > 0 {
			sample = fmt.Sprintf("%d", a.SampleEvery)
		}
		var over string
		switch a.Arm {
		case "sampled":
			over = fmt.Sprintf("%.1f%%", d.SampledOverheadP99Pct)
		case "full":
			over = fmt.Sprintf("%.1f%%", d.FullOverheadP99Pct)
		default:
			over = "baseline"
		}
		t.AddRow(a.Arm, sample, ff(a.QPS), fi(a.P50US), fi(a.P99US), over)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sessions x %d rounds per arm, interleaved; best round (min p99) per arm filters scheduler noise", d.Sessions, d.Rounds),
		"metrics are CounterFunc reads over existing atomics (zero hot-path writes); unsampled queries pay one atomic sampler check per span site")
	return t
}

// E17Overhead runs the experiment for the text-mode registry.
func E17Overhead() *Table {
	d, err := RunE17Bench()
	if err != nil {
		t := &Table{ID: "E17", Title: "observability overhead"}
		t.Notes = append(t.Notes, fmt.Sprintf("FAILED: %v", err))
		return t
	}
	return E17Render(d)
}
