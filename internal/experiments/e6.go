package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E6AttributeIndexing tests Section 4.2.1's indexing advice: a consumer
// annotation ("?") marks an attribute as "a prime candidate for indexing";
// repeated random access against the cached extension should then cost
// far fewer local operations.
func E6AttributeIndexing() *Table {
	t := &Table{
		ID:     "E6",
		Title:  "consumer-annotation-driven attribute indexing on cached extensions",
		Claim:  "indexing consumer-annotated attributes speeds repeated random access to cached relations (Sections 4.2.1, 5.3.3)",
		Header: []string{"indexing", "ext-rows", "probes", "idx-builds", "localSim(ms)"},
	}
	for _, rows := range []int{1000, 8000} {
		for _, ix := range []bool{false, true} {
			res := RunE6(ix, rows)
			t.AddRow(onOff(ix), fi(int64(rows)), fi(int64(res.probes)), fi(res.builds), ff(res.localMS))
		}
	}
	t.Notes = append(t.Notes, "indexed probes touch matching rows only; unindexed probes scan the extension")
	return t
}

type e6Result struct {
	probes  int
	builds  int64
	localMS float64
}

// RunE6 probes a cached extension of the given size with indexing on or off.
func RunE6(indexing bool, rows int) e6Result {
	w := workload.Chain(29, rows, 64)
	costs := remotedb.DefaultCosts()
	f := cache.AllFeatures()
	f.Indexing = indexing
	f.Lazy = false
	f.Prefetch = false
	f.Generalization = false
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs})
	adv := advice.MustParse(`
		view dg(X^, Y^, Z^) :- b3(X, Y, Z).
		view di(X?, Z^) :- b3(X, "c2", Z).
	`)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	// Warm the cache with the full extension.
	if stream, err := s.Query(caql.MustParse("dg(X, Y, Z) :- b3(X, Y, Z)")); err != nil {
		panic(err)
	} else {
		stream.Drain("warm")
	}
	baseLocal := cms.Stats().LocalSimMS
	probes := 40
	tmpl := caql.MustParse(`di(X, Z) :- b3(X, "c2", Z)`)
	for i := 0; i < probes; i++ {
		inst := tmpl.Instantiate(map[string]relation.Value{"X": relation.Int(int64(i % 64))})
		stream, err := s.Query(inst)
		if err != nil {
			panic(fmt.Sprintf("E6: %v", err))
		}
		stream.Drain("out")
	}
	st := cms.Stats()
	return e6Result{probes: probes, builds: st.IndexBuilds, localMS: st.LocalSimMS - baseLocal}
}
