package experiments

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/remotedb"
)

// E18 prices durability (PR 9): the same insert workload runs against the
// engine under each WAL fsync policy — plus the in-memory engine as the
// no-WAL baseline — and recovery is measured against growing logs.
//
// Two claims are under test:
//
//   - the fsync spectrum behaves as designed: "off" writes at near-memory
//     speed, "interval" amortizes syncs over bursts, "always" pays one sync
//     per acknowledged batch (the price of the crash-durability invariant);
//   - recovery is correct and roughly linear in log size: every run of every
//     arm recovers exactly the rows it acknowledged (RowsOK — an INVARIANT,
//     diffed by CI), and replay wall time grows with the record count, not
//     the write history's wall time.

// E18Arm is one fsync policy's best-of-rounds write measurement.
type E18Arm struct {
	Policy string  `json:"policy"` // "memory" | "off" | "interval" | "always"
	Rows   int     `json:"rows"`
	Syncs  int64   `json:"syncs"`              // WAL syncs in the measured round
	RowsPS float64 `json:"write_rows_per_sec"` // best round
	RowsOK bool    `json:"rows_ok"`            // reopen recovered exactly the acked rows
}

// E18Recovery is one log size's best-of-rounds recovery measurement.
type E18Recovery struct {
	Rows       int     `json:"rows"`
	Replayed   int     `json:"replayed"`
	RecoveryMS float64 `json:"recovery_ms"` // best (lowest) round
	RowsOK     bool    `json:"rows_ok"`
}

// E18Data is the machine-readable result (braid-bench -json; BENCH_PR9.json
// commits one run as baseline; CI treats RecoveryCorrect as an invariant).
type E18Data struct {
	Experiment string        `json:"experiment"`
	Rounds     int           `json:"rounds"`
	Arms       []E18Arm      `json:"arms"`
	Recoveries []E18Recovery `json:"recoveries"`

	// AlwaysVsOffSlowdown is write throughput off/always — the measured price
	// of the durability invariant (informational, machine-dependent).
	AlwaysVsOffSlowdown float64 `json:"always_vs_off_slowdown"`
	// RecoveryCorrect is the conjunction of every RowsOK above.
	RecoveryCorrect bool `json:"recovery_correct"`
}

const (
	e18Batches      = 150
	e18RowsPerBatch = 10
	e18Rounds       = 3
)

// e18WriteArm runs one policy round: open a fresh durable engine (or an
// in-memory one for "memory"), insert the workload, report rows/sec and —
// for durable arms — whether a reopen recovers exactly the acked rows.
func e18WriteArm(policy string) (rowsPS float64, syncs int64, rowsOK bool, err error) {
	rows := e18Batches * e18RowsPerBatch
	var e *remotedb.Engine
	var dir string
	if policy == "memory" {
		e = remotedb.NewEngine()
	} else {
		if dir, err = os.MkdirTemp("", "braid-e18-*"); err != nil {
			return 0, 0, false, err
		}
		defer os.RemoveAll(dir)
		pol, perr := remotedb.ParseFsyncPolicy(policy)
		if perr != nil {
			return 0, 0, false, perr
		}
		e, _, err = remotedb.OpenEngine(remotedb.Durability{Dir: dir, Fsync: pol})
		if err != nil {
			return 0, 0, false, err
		}
	}
	if _, _, err = e.ExecuteSQL("CREATE TABLE w (k INT, v TEXT)"); err != nil {
		return 0, 0, false, err
	}
	started := time.Now()
	for b := 0; b < e18Batches; b++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO w VALUES ")
		for i := 0; i < e18RowsPerBatch; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			k := b*e18RowsPerBatch + i
			fmt.Fprintf(&sb, "(%d,'v%d')", k, k)
		}
		if _, _, err = e.ExecuteSQL(sb.String()); err != nil {
			return 0, 0, false, err
		}
	}
	elapsed := time.Since(started)
	rowsPS = float64(rows) / elapsed.Seconds()
	syncs = e.WALStats().Syncs

	if policy == "memory" {
		return rowsPS, 0, true, nil
	}
	if err = e.CloseWAL(); err != nil {
		return 0, 0, false, err
	}
	r, _, err := remotedb.OpenEngine(remotedb.Durability{Dir: dir})
	if err != nil {
		return 0, 0, false, err
	}
	defer r.CloseWAL()
	rel, _, err := r.ExecuteSQL("SELECT k FROM w")
	if err != nil {
		return 0, 0, false, err
	}
	return rowsPS, syncs, rel.Len() == rows, nil
}

// e18Recovery builds a log of the given row count (fsync off: log size, not
// sync cost, is the variable) and measures one cold recovery.
func e18Recovery(rows int) (E18Recovery, error) {
	rec := E18Recovery{Rows: rows}
	dir, err := os.MkdirTemp("", "braid-e18-rec-*")
	if err != nil {
		return rec, err
	}
	defer os.RemoveAll(dir)
	e, _, err := remotedb.OpenEngine(remotedb.Durability{Dir: dir, Fsync: remotedb.FsyncOff})
	if err != nil {
		return rec, err
	}
	if _, _, err := e.ExecuteSQL("CREATE TABLE w (k INT, v TEXT)"); err != nil {
		return rec, err
	}
	const batch = 100
	for lo := 0; lo < rows; lo += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO w VALUES ")
		for i := lo; i < lo+batch && i < rows; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d,'v%d')", i, i)
		}
		if _, _, err := e.ExecuteSQL(sb.String()); err != nil {
			return rec, err
		}
	}
	if err := e.CloseWAL(); err != nil {
		return rec, err
	}
	r, st, err := remotedb.OpenEngine(remotedb.Durability{Dir: dir})
	if err != nil {
		return rec, err
	}
	defer r.CloseWAL()
	rel, _, err := r.ExecuteSQL("SELECT k FROM w")
	if err != nil {
		return rec, err
	}
	rec.Replayed = st.Replayed
	rec.RecoveryMS = float64(st.WallTime.Microseconds()) / 1000
	rec.RowsOK = rel.Len() == rows
	return rec, nil
}

// RunE18Bench measures every arm. Rounds interleave across policies (like
// E17) so machine phases spread instead of biasing one arm; each arm keeps
// its best round. RowsOK must hold on EVERY round, not just the best one —
// correctness is not a statistic.
func RunE18Bench() (*E18Data, error) {
	policies := []string{"memory", "off", "interval", "always"}
	d := &E18Data{
		Experiment:      "E18",
		Rounds:          e18Rounds,
		RecoveryCorrect: true,
	}
	d.Arms = make([]E18Arm, len(policies))
	for i, p := range policies {
		d.Arms[i] = E18Arm{Policy: p, Rows: e18Batches * e18RowsPerBatch, RowsOK: true}
	}
	for round := 0; round < e18Rounds; round++ {
		for i, p := range policies {
			rowsPS, syncs, ok, err := e18WriteArm(p)
			if err != nil {
				return nil, fmt.Errorf("arm %s: %w", p, err)
			}
			a := &d.Arms[i]
			if rowsPS > a.RowsPS {
				a.RowsPS = rowsPS
				a.Syncs = syncs
			}
			if !ok {
				a.RowsOK = false
				d.RecoveryCorrect = false
			}
		}
	}

	for _, rows := range []int{1000, 4000, 16000} {
		var best E18Recovery
		for round := 0; round < e18Rounds; round++ {
			rec, err := e18Recovery(rows)
			if err != nil {
				return nil, fmt.Errorf("recovery at %d rows: %w", rows, err)
			}
			if round == 0 || rec.RecoveryMS < best.RecoveryMS {
				ok := best.RowsOK || round == 0
				best = rec
				best.RowsOK = rec.RowsOK && ok
			} else if !rec.RowsOK {
				best.RowsOK = false
			}
		}
		if !best.RowsOK {
			d.RecoveryCorrect = false
		}
		d.Recoveries = append(d.Recoveries, best)
	}

	var off, always float64
	for _, a := range d.Arms {
		switch a.Policy {
		case "off":
			off = a.RowsPS
		case "always":
			always = a.RowsPS
		}
	}
	if always > 0 {
		d.AlwaysVsOffSlowdown = off / always
	}
	return d, nil
}

// E18Render formats a measured run as the experiment table.
func E18Render(d *E18Data) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "durability: write throughput by fsync policy; recovery time by log size",
		Claim:  "fsync=always buys crash durability for a bounded write slowdown; recovery replays the log correctly (every acked row, exactly once) in time linear in its size",
		Header: []string{"arm", "rows", "syncs", "rows/s", "recovered"},
	}
	for _, a := range d.Arms {
		okStr := "ok"
		if !a.RowsOK {
			okStr = "ROWS LOST"
		}
		if a.Policy == "memory" {
			okStr = "n/a (no WAL)"
		}
		t.AddRow(a.Policy, fi(int64(a.Rows)), fi(a.Syncs), ff(a.RowsPS), okStr)
	}
	for _, r := range d.Recoveries {
		ok := "ok"
		if !r.RowsOK {
			ok = "ROWS LOST"
		}
		t.AddRow(fmt.Sprintf("recover %dk rows", r.Rows/1000), fi(int64(r.Rows)),
			fi(int64(r.Replayed)), fmt.Sprintf("%.1f ms", r.RecoveryMS), ok)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rounds per arm, interleaved, best round kept; RowsOK checked on every round", d.Rounds),
		fmt.Sprintf("fsync=always write cost: %.1fx slower than fsync=off on this machine", d.AlwaysVsOffSlowdown),
		"recovery arms build their log under fsync=off: the variable is log size, not sync cost")
	return t
}

// E18Durability runs the experiment for the text-mode registry.
func E18Durability() *Table {
	d, err := RunE18Bench()
	if err != nil {
		t := &Table{ID: "E18", Title: "durability"}
		t.Notes = append(t.Notes, fmt.Sprintf("FAILED: %v", err))
		return t
	}
	return E18Render(d)
}
