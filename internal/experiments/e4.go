package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// e4Advice is the paper's Example 1 advice shape over the chain workload.
const e4Advice = `
	view d1(Y^) :- b1("c1", Y) [r1].
	view d2(X^, Y?) :- b2(X, Z) & b3(Z, "c2", Y) [r2].
	view d3(X^, Y?) :- b3(X, "c3", Z) & b1(Z, Y) [r3].
	path (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>.
`

// E4Prefetching tests Section 5.3.1's prefetch rule: after d2(X,c) the CMS
// can process d3(X,c) "before it actually receives d3(X,c) from the IE",
// hiding remote latency behind IE think time. The experiment replays the
// Example 1 query sequence with prefetching on and off, across remote
// latencies.
func E4Prefetching() *Table {
	t := &Table{
		ID:     "E4",
		Title:  "path-expression prefetching vs remote latency",
		Claim:  "sequence groupings in the path expression let the CMS prefetch followers during think time (Sections 4.2.2, 5.3.1)",
		Header: []string{"prefetch", "latency(ms)", "remote", "prefetches", "pf-hits", "simResp(ms)"},
	}
	for _, latency := range []float64{10, 50, 200} {
		for _, pf := range []bool{false, true} {
			st := RunE4(pf, latency)
			t.AddRow(onOff(pf), ff(latency), fi(st.RemoteRequests), fi(st.Prefetches), fi(st.PrefetchHits), ff(st.ResponseSimMS))
		}
	}
	t.Notes = append(t.Notes, "prefetching converts follower fetches into think-time work; the gap widens with latency")
	return t
}

// RunE4 replays the Example 1 session at the given latency with prefetching
// on or off.
func RunE4(prefetch bool, latencyMS float64) statsE4 {
	w := workload.Chain(19, 600, 25)
	costs := remotedb.DefaultCosts()
	costs.PerRequest = latencyMS
	f := cache.AllFeatures()
	f.Prefetch = prefetch
	f.Generalization = false // isolate prefetching
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs, ThinkTimeMS: 4 * latencyMS})
	adv := advice.MustParse(e4Advice)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	// The Example 1 session: d1, then (d2, d3) pairs per binding.
	d1 := caql.MustParse(`d1(Y) :- b1("c1", Y)`)
	stream, err := s.Query(d1)
	if err != nil {
		panic(err)
	}
	ys := stream.Drain("ys")
	n := ys.Len()
	if n > 6 {
		n = 6
	}
	d2t := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	d3t := caql.MustParse(`d3(X, Y) :- b3(X, "c3", Z) & b1(Z, Y)`)
	for i := 0; i < n; i++ {
		c := ys.Tuple(i)[0]
		for _, tmpl := range []*caql.Query{d2t, d3t} {
			inst := tmpl.Instantiate(map[string]relation.Value{"Y": c})
			stream, err := s.Query(inst)
			if err != nil {
				panic(fmt.Sprintf("E4: %s: %v", inst, err))
			}
			stream.Drain("out")
		}
	}
	st := cms.Stats()
	return statsE4{
		RemoteRequests: st.RemoteRequests,
		Prefetches:     st.Prefetches,
		PrefetchHits:   st.PrefetchHits,
		ResponseSimMS:  st.ResponseSimMS,
	}
}

type statsE4 struct {
	RemoteRequests int64
	Prefetches     int64
	PrefetchHits   int64
	ResponseSimMS  float64
}
