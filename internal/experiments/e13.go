package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E13 measures the admission controller under overload: K sessions hammer a
// CMS whose remote backend is a serialized slow server, with and without
// admission control (MaxInflight + bounded queue). Without admission, every
// query queues on the backend and tail latency grows linearly with offered
// load; with admission, excess load is shed instantly with the typed
// ErrOverloaded, bounding the latency of the queries that are admitted. The
// stats-conservation invariant (every query resolves to exactly one outcome)
// must hold in both configurations.

// e13SlowClient serializes every remote request behind one mutex and a fixed
// service time — the single-threaded backend that makes offered load exceed
// capacity.
type e13SlowClient struct {
	remotedb.Client
	mu      sync.Mutex
	service time.Duration
}

func (c *e13SlowClient) Exec(sql string) (*remotedb.Result, error) {
	c.mu.Lock()
	time.Sleep(c.service)
	c.mu.Unlock()
	return c.Client.Exec(sql)
}

// E13Result is one configuration's measurement.
type E13Result struct {
	Sessions  int
	Admission bool
	Offered   int64
	P50, P99  time.Duration // over completed queries
	ShedRate  float64
	Conserved bool
}

// RunE13 runs K sessions of tight-loop consumer-bound queries against the
// slow backend. Features are loose (everything off) so every query is a
// remote round trip — the experiment isolates dispatch behavior, not caching.
func RunE13(k int, admissionOn bool, perSession int) E13Result {
	w := workload.Chain(53, 400, 24)
	costs := remotedb.DefaultCosts()
	slow := &e13SlowClient{
		Client:  remotedb.NewInProcClient(w.Engine(), costs),
		service: 200 * time.Microsecond,
	}
	opts := cache.Options{Features: cache.Features{}, Costs: costs}
	if admissionOn {
		opts.MaxInflight = 4
		opts.MaxQueue = 4
	}
	cms := cache.New(slow, opts)

	var (
		mu        sync.Mutex
		completed []time.Duration
		wg        sync.WaitGroup
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			s := cms.BeginSession(advice.MustParse(e4Advice)).(*cache.Session)
			defer s.End()
			for n := 0; n < perSession; n++ {
				// Distinct constants defeat any residual reuse: each query is
				// a fresh remote fetch competing for the backend.
				q := caql.MustParse(fmt.Sprintf(
					`d1(Y) :- b1("c1", Y) & Y != %d`, sid*perSession+n))
				t0 := time.Now()
				stream, err := s.Query(q)
				if err != nil {
					continue // shed (or failed); counted by the CMS stats
				}
				stream.Drain("out")
				d := time.Since(t0)
				mu.Lock()
				completed = append(completed, d)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()

	sort.Slice(completed, func(a, b int) bool { return completed[a] < completed[b] })
	pct := func(p float64) time.Duration {
		if len(completed) == 0 {
			return 0
		}
		return completed[int(p*float64(len(completed)-1))]
	}
	st := cms.Stats()
	return E13Result{
		Sessions:  k,
		Admission: admissionOn,
		Offered:   st.Queries,
		P50:       pct(0.50),
		P99:       pct(0.99),
		ShedRate:  float64(st.Shed) / float64(st.Queries),
		Conserved: st.DispatchConserved(),
	}
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}

// E13AdmissionControl is the overload table: K ∈ {2, 8, 32} sessions against
// the serialized backend, admission off vs on.
func E13AdmissionControl() *Table {
	t := &Table{
		ID:     "E13",
		Title:  "admission control under overload (serialized slow backend)",
		Claim:  "a MaxInflight bound with a bounded wait queue sheds excess load with the typed ErrOverloaded, keeping admitted-query tail latency flat while unbounded dispatch queues without limit; dispatch conservation holds either way",
		Header: []string{"sessions", "admission", "offered", "p50(us)", "p99(us)", "shed rate", "conserved"},
	}
	const perSession = 30
	for _, k := range []int{2, 8, 32} {
		for _, adm := range []bool{false, true} {
			r := RunE13(k, adm, perSession)
			t.AddRow(fi(int64(r.Sessions)), onOff(r.Admission), fi(r.Offered),
				fi(r.P50.Microseconds()), fi(r.P99.Microseconds()),
				fp(r.ShedRate), yesNo(r.Conserved))
		}
	}
	t.Notes = append(t.Notes,
		"the backend serializes requests at ~200us each, so any K > 1 over-subscribes it; admission is MaxInflight=4 with a queue of 4",
		"p50/p99 are wall-clock over completed (admitted) queries only; shed queries fail in microseconds with bridge.ErrOverloaded and are excluded",
		"conservation = Queries == Completed+Canceled+DeadlineExceeded+Shed+Failed at quiescence (the chaos soak asserts the same invariant under faults)")
	return t
}
