package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q not numeric", tab.ID, row, col, tab.Rows[row][col])
	}
	return v
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("%s has no column %q", tab.ID, name)
	return -1
}

func TestE1Shape(t *testing.T) {
	tab := E1ICRange()
	if len(tab.Rows) != 10 {
		t.Fatalf("E1 rows = %d", len(tab.Rows))
	}
	remote := colIndex(t, tab, "remote")
	tuples := colIndex(t, tab, "tuples")
	// Row order: interp-loose/{all,first}, conj-loose/{all,first},
	// compiled-loose/{all,first}, interp-braid/{all,first},
	// interp-loose/anc-first, compiled-loose/anc-first.
	// Claim 1: compiled issues far fewer remote requests than interpreted
	// for all-solutions under loose coupling.
	if !(cell(t, tab, 4, remote) < cell(t, tab, 0, remote)) {
		t.Errorf("compiled/all should issue fewer remote requests than interpreted/all\n%s", tab)
	}
	// Claim 2 (the per-problem crossover): on the selective anc query with
	// one solution demanded, interpreted ships fewer tuples than compiled.
	if !(cell(t, tab, 8, tuples) < cell(t, tab, 9, tuples)) {
		t.Errorf("interpreted/anc-first should ship fewer tuples than compiled\n%s", tab)
	}
	// Demand sensitivity: interpreted/first costs a fraction of
	// interpreted/all; compiled shows no demand sensitivity.
	if !(cell(t, tab, 1, remote) < cell(t, tab, 0, remote)/10) {
		t.Errorf("interpreted should be demand-sensitive\n%s", tab)
	}
	if cell(t, tab, 4, remote) != cell(t, tab, 5, remote) {
		t.Errorf("compiled should be demand-insensitive\n%s", tab)
	}
	// Claim 3: the BrAID layer cuts the interpreted strategy's remote
	// requests dramatically versus loose coupling.
	if !(cell(t, tab, 6, remote) < cell(t, tab, 0, remote)/2) {
		t.Errorf("braid layer should collapse interpreted remote requests\n%s", tab)
	}
	// Answers agree between strategies for all-solutions runs (distinct).
	ans := colIndex(t, tab, "answers")
	if cell(t, tab, 0, ans) != cell(t, tab, 2, ans) || cell(t, tab, 2, ans) != cell(t, tab, 4, ans) || cell(t, tab, 4, ans) != cell(t, tab, 6, ans) {
		t.Errorf("strategies disagree on answer count\n%s", tab)
	}
}

func TestE2ShapeAndConsistency(t *testing.T) {
	if err := verifyE2Consistency(); err != nil {
		t.Fatal(err)
	}
	tab := E2CachingStrategies()
	remote := colIndex(t, tab, "remote")
	hits := colIndex(t, tab, "full-hits")
	// Rows: loose, exact, singlerel, braid.
	if !(cell(t, tab, 3, remote) < cell(t, tab, 0, remote)) {
		t.Errorf("braid should issue fewer remote requests than loose\n%s", tab)
	}
	if !(cell(t, tab, 3, remote) <= cell(t, tab, 1, remote)) {
		t.Errorf("braid should not exceed exact-match remote requests\n%s", tab)
	}
	if !(cell(t, tab, 3, hits) > cell(t, tab, 1, hits)) {
		t.Errorf("subsumption should produce more full hits than exact matching\n%s", tab)
	}
	if cell(t, tab, 0, hits) != 0 {
		t.Errorf("loose coupling must have zero hits\n%s", tab)
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3LazyVsEager()
	local := colIndex(t, tab, "localSim(ms)")
	// Rows: eager/1, eager/10, eager/all, lazy/1, lazy/10, lazy/all.
	if !(cell(t, tab, 3, local) < cell(t, tab, 0, local)) {
		t.Errorf("lazy/1 should cost less local time than eager/1\n%s", tab)
	}
	if !(cell(t, tab, 3, local) < cell(t, tab, 5, local)) {
		t.Errorf("lazy cost should grow with demand\n%s", tab)
	}
	// Eager cost is ~flat across demand.
	if cell(t, tab, 0, local) < 0.9*cell(t, tab, 2, local) {
		t.Errorf("eager cost should not depend on demand\n%s", tab)
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4Prefetching()
	resp := colIndex(t, tab, "simResp(ms)")
	hits := colIndex(t, tab, "pf-hits")
	// Pairs per latency: off, on.
	for p := 0; p < 3; p++ {
		off, on := 2*p, 2*p+1
		if !(cell(t, tab, on, resp) < cell(t, tab, off, resp)) {
			t.Errorf("prefetching should cut response at latency row %d\n%s", p, tab)
		}
		if cell(t, tab, on, hits) == 0 {
			t.Errorf("expected prefetch hits at latency row %d\n%s", p, tab)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5Generalization()
	remote := colIndex(t, tab, "remote")
	gens := colIndex(t, tab, "generalized")
	// Pairs per instance count: off, on. With generalization, remote
	// requests stay near-constant as instances grow; without, they grow.
	offGrowth := cell(t, tab, 4, remote) - cell(t, tab, 0, remote)
	onGrowth := cell(t, tab, 5, remote) - cell(t, tab, 1, remote)
	if !(onGrowth < offGrowth) {
		t.Errorf("generalization should flatten remote growth (off %+.0f vs on %+.0f)\n%s", offGrowth, onGrowth, tab)
	}
	if cell(t, tab, 5, gens) == 0 {
		t.Errorf("expected generalizations\n%s", tab)
	}
	if cell(t, tab, 4, gens) != 0 {
		t.Errorf("generalization off must not generalize\n%s", tab)
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6AttributeIndexing()
	local := colIndex(t, tab, "localSim(ms)")
	builds := colIndex(t, tab, "idx-builds")
	for p := 0; p < 2; p++ {
		off, on := 2*p, 2*p+1
		if !(cell(t, tab, on, local) < cell(t, tab, off, local)) {
			t.Errorf("indexing should cut local time at size row %d\n%s", p, tab)
		}
		if cell(t, tab, on, builds) == 0 {
			t.Errorf("expected index builds\n%s", tab)
		}
	}
	// The advantage is substantial at both sizes (matched rows scale with
	// the extension under a fixed domain, so the ratio is roughly constant
	// rather than growing).
	gainSmall := cell(t, tab, 0, local) / cell(t, tab, 1, local)
	gainBig := cell(t, tab, 2, local) / cell(t, tab, 3, local)
	if gainSmall < 3 || gainBig < 3 {
		t.Errorf("index advantage too small (%.1fx, %.1fx)\n%s", gainSmall, gainBig, tab)
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7Replacement()
	ref := colIndex(t, tab, "d1-refetches")
	// Rows: off, on.
	if !(cell(t, tab, 1, ref) < cell(t, tab, 0, ref)) {
		t.Errorf("advice replacement should reduce refetches\n%s", tab)
	}
	if cell(t, tab, 1, ref) != 0 {
		t.Errorf("protected element should never be refetched\n%s", tab)
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8ParallelSubqueries()
	resp := colIndex(t, tab, "simResp(ms)")
	partial := colIndex(t, tab, "partial-hits")
	for p := 0; p < 3; p++ {
		off, on := 2*p, 2*p+1
		if cell(t, tab, off, partial) == 0 {
			t.Errorf("E8 requires decomposed queries\n%s", tab)
		}
		if !(cell(t, tab, on, resp) < cell(t, tab, off, resp)) {
			t.Errorf("parallel should cut response at latency row %d\n%s", p, tab)
		}
	}
}

func TestE9Shape(t *testing.T) {
	tab := E9SubsumptionOverhead()
	if len(tab.Rows) != 3 {
		t.Fatalf("E9 rows = %d", len(tab.Rows))
	}
	// The 1000-element pass should still be well under one 50ms round trip.
	frac, err := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[2][3], "x"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 1 {
		t.Errorf("subsumption pass costs more than a round trip: %s\n%s", tab.Rows[2][3], tab)
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	tables := All()
	if len(tables) != 12 {
		t.Fatalf("expected 12 experiments, got %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 || tab.String() == "" {
			t.Errorf("%s produced no rows", tab.ID)
		}
	}
}

// TestE12Shape: concurrent sessions over one shared CMS must answer every
// query (accounted exactly once) and hit at least as often as the serial
// session — wall-clock speed is environment-dependent and not asserted.
func TestE12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent replay in short mode")
	}
	perSession := int64(len(e10Sequence()))
	serial := RunE12(1)
	if serial.Stats.Queries != perSession {
		t.Fatalf("serial queries = %d, want %d", serial.Stats.Queries, perSession)
	}
	serialRate := float64(serial.Stats.CacheHits+serial.Stats.PartialHits) / float64(serial.Stats.Queries)
	conc := RunE12(8)
	if conc.Stats.Queries != 8*perSession {
		t.Fatalf("concurrent queries = %d, want %d", conc.Stats.Queries, 8*perSession)
	}
	concRate := float64(conc.Stats.CacheHits+conc.Stats.PartialHits) / float64(conc.Stats.Queries)
	// Sessions racing on a cold cache can each miss the same query before the
	// first insert lands (at most ~one duplicate fetch per session per view),
	// so parity holds up to a one-query-per-session tolerance.
	if tol := 1.0 / float64(perSession); concRate < serialRate-tol {
		t.Errorf("shared-cache hit rate %.3f below serial %.3f (tolerance %.3f)", concRate, serialRate, tol)
	}
	if conc.QPS <= 0 || conc.P50 <= 0 || conc.P99 < conc.P50 {
		t.Errorf("degenerate latency aggregation: %+v", conc)
	}
}

// TestE14Shape runs the stream-transport experiment at a reduced scale and
// checks the directional claims: streaming beats the monolithic transport on
// first-tuple latency, and pooled throughput grows with the pool against the
// session-serial 1ms-per-request remote. The full-scale acceptance ratios
// (5x / 3x) are asserted by braid-bench runs, not here — a loaded CI host
// gets a conservative floor instead.
func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP measurement in short mode")
	}
	d, err := RunE14(20000, 3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FirstTuple) != 4 || len(d.Throughput) != 3 {
		t.Fatalf("unexpected shape: %+v", d)
	}
	if d.FirstTuple[0].Transport != "v1-monolithic" {
		t.Fatalf("row 0 should be v1, got %+v", d.FirstTuple[0])
	}
	for _, f := range d.FirstTuple {
		if f.Tuples != 20000 {
			t.Errorf("%s/%d returned %d tuples, want 20000", f.Transport, f.FrameTuples, f.Tuples)
		}
	}
	if raceEnabled {
		t.Logf("race detector on: skipping ratio floors (speedup %.2fx, scaling %.2fx)",
			d.FirstTupleSpeedup, d.PoolScalingQPS)
	} else {
		if !(d.FirstTupleSpeedup > 1.5) {
			t.Errorf("streaming first-tuple speedup %.2fx, want > 1.5x", d.FirstTupleSpeedup)
		}
		if !(d.PoolScalingQPS > 1.5) {
			t.Errorf("pool 1->8 QPS scaling %.2fx, want > 1.5x", d.PoolScalingQPS)
		}
	}
	for _, p := range d.Throughput {
		if p.Queries != int64(p.Sessions*10) {
			t.Errorf("pool %d completed %d queries, want %d", p.PoolSize, p.Queries, p.Sessions*10)
		}
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11FaultTolerance()
	if len(tab.Rows) != 5 {
		t.Fatalf("E11 rows = %d", len(tab.Rows))
	}
	failedC := colIndex(t, tab, "failed")
	retriesC := colIndex(t, tab, "retries")
	hitsC := colIndex(t, tab, "hits")
	ansC := colIndex(t, tab, "answered%")
	// A fault-free run is fault-free.
	if cell(t, tab, 0, failedC) != 0 || cell(t, tab, 0, retriesC) != 0 {
		t.Errorf("zero fault rate should not fail or retry\n%s", tab)
	}
	// Under the heaviest fault rate, retries are doing work and the warm
	// cache keeps the answered rate far above 1-faultRate.
	last := len(tab.Rows) - 1
	if cell(t, tab, last, retriesC) == 0 {
		t.Errorf("40%% fault rate should force retries\n%s", tab)
	}
	if cell(t, tab, last, ansC) < 75 {
		t.Errorf("degradation not graceful: answered%% = %v\n%s", tab.Rows[last][ansC], tab)
	}
	for r := 0; r < len(tab.Rows); r++ {
		if cell(t, tab, r, hitsC) == 0 {
			t.Errorf("row %d: cache hits vanished under faults\n%s", r, tab)
		}
	}
}

func TestE10Shape(t *testing.T) {
	tab := E10FeatureAblation()
	if len(tab.Rows) != 9 {
		t.Fatalf("E10 rows = %d", len(tab.Rows))
	}
	resp := colIndex(t, tab, "simResp(ms)")
	// Full braid has the minimum response time; every ablation costs at
	// least as much, and all-off costs strictly more. (Request counts are
	// deliberately NOT monotone: e.g. disabling prefetch can *reduce*
	// requests because generalization already covers the followers — the
	// table records such interactions honestly.)
	full := cell(t, tab, 0, resp)
	off := cell(t, tab, len(tab.Rows)-1, resp)
	if !(full < off) {
		t.Errorf("full braid should beat all-off on response time\n%s", tab)
	}
	for r := 1; r < len(tab.Rows); r++ {
		if cell(t, tab, r, resp) < full-0.5 {
			t.Errorf("ablation row %d (%s) beats the full configuration\n%s", r, tab.Rows[r][0], tab)
		}
	}
}

// TestE19Shape runs the morsel-parallelism sweep at a reduced scale: the
// result must carry every (shape, dop) arm with dop-invariant cardinality
// and server ops (parallel execution may not change what a query returns or
// how much work it charges), and the engine counters must show the pool
// engaging for dop > 1 and falling back for dop 1. The full-scale speedup
// floor (agg dop4 >= 1.8x) is asserted by braid-bench -baseline runs, not
// here — under the race detector the instrumented CPU work can swamp the
// simulated stall, so the floor here is conservative.
func TestE19Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("real TCP measurement in short mode")
	}
	d, err := RunE19(12000, 1, 1*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Shapes) != 12 { // 3 shapes x dop {1,2,4,8}
		t.Fatalf("unexpected shape count %d: %+v", len(d.Shapes), d)
	}
	base := map[string]E19Shape{}
	for _, s := range d.Shapes {
		if s.DOP == 1 {
			base[s.Shape] = s
			continue
		}
		b := base[s.Shape]
		if s.Tuples != b.Tuples || s.Ops != b.Ops {
			t.Errorf("%s at dop %d: %d tuples / %d ops, serial returned %d / %d",
				s.Shape, s.DOP, s.Tuples, s.Ops, b.Tuples, b.Ops)
		}
	}
	if d.ParStreams == 0 || d.ParMorsels == 0 || d.ParWorkers == 0 {
		t.Errorf("parallel counters never moved: %+v", d)
	}
	if d.ParFallbacks == 0 {
		t.Errorf("dop-1 arms should count as serial fallbacks: %+v", d)
	}
	if d.FirstTupleSerialUS <= 0 || d.FirstTupleParUS <= 0 {
		t.Errorf("first-tuple arm did not measure: %+v", d)
	}
	if raceEnabled {
		t.Logf("race detector on: skipping speedup floor (agg dop4 %.2fx)", d.AggSpeedup4)
	} else {
		if !(d.AggSpeedup4 > 1.2) {
			t.Errorf("agg dop4 speedup %.2fx under a 1ms morsel stall, want > 1.2x", d.AggSpeedup4)
		}
	}
}
