package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E3LazyVsEager tests Section 5.1's claim: generator-form (lazy) evaluation
// avoids computing solutions the IE never demands — the single-solution vs
// all-solutions side of the impedance mismatch. A strict-producer view is
// cached; the session then re-queries it and consumes k of the available
// tuples, under lazy and eager CMS configurations.
func E3LazyVsEager() *Table {
	t := &Table{
		ID:     "E3",
		Title:  "lazy (generator) vs eager (extension) evaluation vs tuples demanded",
		Claim:  "lazy evaluation produces only the demanded tuples when the query is answerable from the cache (Sections 2, 5.1)",
		Header: []string{"mode", "demanded", "available", "localSim(ms)", "simResp(ms)"},
	}
	for _, lazy := range []bool{false, true} {
		for _, k := range []int{1, 10, 0} { // 0 = all
			res := RunE3(lazy, k)
			demand := "all"
			if k > 0 {
				demand = fi(int64(k))
			}
			t.AddRow(map[bool]string{true: "lazy", false: "eager"}[lazy],
				demand, fi(int64(res.available)), ff(res.localMS), ff(res.respMS))
		}
	}
	t.Notes = append(t.Notes, "lazy cost scales with demand; eager pays the full extension regardless")
	return t
}

type e3Result struct {
	available int
	localMS   float64
	respMS    float64
}

// RunE3 measures one lazy/eager cell: warm the view, re-query, consume k
// tuples (0 = all).
func RunE3(lazy bool, k int) e3Result {
	w := workload.Chain(17, 3000, 40)
	f := cache.AllFeatures()
	f.Lazy = lazy
	f.Prefetch = false
	f.Generalization = false
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts()),
		cache.Options{Features: f, Costs: remotedb.DefaultCosts()})
	// Strict-producer advice for the view.
	adv := advice.MustParse(`view dp(X^, Y^, Z^) :- b3(X, Y, Z).`)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	warm := caql.MustParse("dp(X, Y, Z) :- b3(X, Y, Z)")
	stream, err := s.Query(warm)
	if err != nil {
		panic(fmt.Sprintf("E3 warm: %v", err))
	}
	available := stream.Drain("warm").Len()

	baseLocal := cms.Stats().LocalSimMS
	baseResp := cms.Stats().ResponseSimMS
	stream, err = s.Query(warm.Clone())
	if err != nil {
		panic(err)
	}
	if k > 0 {
		stream.Take(k)
	} else {
		stream.Drain("all")
	}
	st := cms.Stats()
	return e3Result{
		available: available,
		localMS:   st.LocalSimMS - baseLocal,
		respMS:    st.ResponseSimMS - baseResp,
	}
}
