package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E7Replacement tests the Section 4.2.2 replacement claim: after tracking
// the path expression, the CMS knows an element "will be required for one of
// the next two queries — if the CMS needs to replace some cache element it
// is clear that [it] is not the best candidate." Under a budget that cannot
// hold everything, plain LRU keeps evicting the element the session is about
// to reuse; advice-modified LRU protects it.
func E7Replacement() *Table {
	t := &Table{
		ID:     "E7",
		Title:  "plain LRU vs advice-modified replacement under cache pressure",
		Claim:  "path-expression predictions identify poor replacement victims (Sections 4.2.2, 5.4)",
		Header: []string{"advice-repl", "rounds", "remote", "d1-refetches", "evictions", "simResp(ms)"},
	}
	for _, prot := range []bool{false, true} {
		res := RunE7(prot)
		t.AddRow(onOff(prot), fi(int64(res.rounds)), fi(res.remote), fi(res.refetches), fi(res.evictions), ff(res.respMS))
	}
	t.Notes = append(t.Notes, "d1-refetches counts remote fetches of the protected view beyond the first")
	return t
}

type e7Result struct {
	rounds    int
	remote    int64
	refetches int64
	evictions int64
	respMS    float64
}

// RunE7 runs the pressure session with or without advice-modified
// replacement.
func RunE7(protect bool) e7Result {
	w := workload.Chain(31, 500, 24)
	costs := remotedb.DefaultCosts()
	f := cache.AllFeatures()
	f.Prefetch = false
	f.Generalization = false
	f.AdviceReplacement = protect

	d1 := caql.MustParse(`d1(Y) :- b1("c1", Y)`)
	f1 := caql.MustParse(`f1(X, Z) :- b3(X, "c1", Z)`)
	f2 := caql.MustParse(`f2(X, Z) :- b3(X, "c3", Z)`)

	// Size the budget so that d1 plus either filler fits but all three do
	// not: every round forces one eviction, and the victim choice is what
	// the experiment measures.
	src := w.Source()
	sizeOf := func(q *caql.Query) int64 {
		r, err := caql.Eval(q, src)
		if err != nil {
			panic(err)
		}
		return r.SizeBytes()
	}
	s1, s2, s3 := sizeOf(d1), sizeOf(f1), sizeOf(f2)
	minFiller := s2
	if s3 < minFiller {
		minFiller = s3
	}
	budget := s1 + s2 + s3 - minFiller/2

	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs, CacheBytes: budget, PredictHorizon: 8})
	adv := advice.MustParse(`
		view d1(Y^) :- b1("c1", Y).
		view f1(X^, Z^) :- b3(X, "c1", Z).
		view f2(X^, Z^) :- b3(X, "c3", Z).
		path ((d1(Y^), f1(X^, Z^), f2(X^, Z^))<0,*>)<1,1>.
	`)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	rounds := 6
	var d1Fetches int64
	for r := 0; r < rounds; r++ {
		before := cms.Stats().RemoteRequests
		if stream, err := s.Query(d1.Clone()); err != nil {
			panic(fmt.Sprintf("E7: %v", err))
		} else {
			stream.Drain("d1")
		}
		d1Fetches += cms.Stats().RemoteRequests - before
		for _, q := range []*caql.Query{f1, f2} {
			if stream, err := s.Query(q.Clone()); err != nil {
				panic(err)
			} else {
				stream.Drain("f")
			}
		}
	}
	st := cms.Stats()
	return e7Result{
		rounds:    rounds,
		remote:    st.RemoteRequests,
		refetches: d1Fetches - 1,
		evictions: st.Evictions,
		respMS:    st.ResponseSimMS,
	}
}
