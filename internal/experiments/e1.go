package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ie"
	"repro/internal/logic"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E1ICRange tests the paper's central Section 2 claim: "it is simply not the
// case that more fully compiled systems are always preferable. The optimum
// point on the I-C range will differ ... Sometimes results are more useful
// if provided incrementally. Not all solutions to a problem may be needed."
//
// The kinship workload runs under each strategy twice — consuming all
// (distinct) solutions, and consuming only the first solution of each query
// — over a *loose-coupling* data layer, isolating the strategy dimension.
// (E2 then evaluates the bridge itself on a fixed strategy.) An additional
// pair of rows shows the interpreted strategy behind the full BrAID CMS: the
// bridge recovers most of the compiled extreme's transfer efficiency while
// keeping single-solution laziness.
func E1ICRange() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "inference strategy along the I-C range vs demand",
		Claim:  "more compiled is not always better; the optimum depends on how many solutions are demanded (Section 2)",
		Header: []string{"strategy", "data-layer", "demand", "answers", "remote", "tuples", "simResp(ms)"},
	}
	type cfg struct {
		strat ie.Strategy
		braid bool
	}
	cfgs := []cfg{
		{ie.StrategyInterpreted, false},
		{ie.StrategyConjunction, false},
		{ie.StrategyCompiled, false},
		{ie.StrategyInterpreted, true},
	}
	for _, c := range cfgs {
		for _, all := range []bool{true, false} {
			st, answers := RunE1(c.strat, c.braid, all)
			demand := "all"
			if !all {
				demand = "first"
			}
			layer := "loose"
			if c.braid {
				layer = "braid"
			}
			t.AddRow(c.strat.String(), layer, demand, fi(int64(answers)), fi(st.RemoteRequests), fi(st.RemoteTuples), ff(st.ResponseSimMS))
		}
	}
	// The per-problem crossover (Section 2: the optimum differs "even from
	// problem to problem"): for a selective recursive query demanding one
	// solution, the interpreted strategy ships a fraction of the compiled
	// strategy's tuples.
	ancOnly := []logic.Atom{logic.A("anc", logic.CStr("p000"), logic.V("Y"))}
	for _, strat := range []ie.Strategy{ie.StrategyInterpreted, ie.StrategyCompiled} {
		st, answers := RunE1Queries(strat, false, false, ancOnly)
		t.AddRow(strat.String(), "loose", "anc/first", fi(int64(answers)), fi(st.RemoteRequests), fi(st.RemoteTuples), ff(st.ResponseSimMS))
	}
	t.Notes = append(t.Notes,
		"loose layer: compiled wins all-solutions, interpreted wins selective first-solution transfer; the BrAID layer closes most of the gap for the interpreted strategy")
	return t
}

// RunE1 runs the kinship session for one strategy/layer/demand cell.
func RunE1(strat ie.Strategy, braidLayer, allSolutions bool) (stats statsView, answers int) {
	return RunE1Queries(strat, braidLayer, allSolutions, nil)
}

// RunE1Queries is RunE1 restricted to the given queries (nil = the whole
// workload mix).
func RunE1Queries(strat ie.Strategy, braidLayer, allSolutions bool, only []logic.Atom) (stats statsView, answers int) {
	w := workload.Kinship(11, 120)
	client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
	cfg := core.Config{
		Comparator: core.ComparatorLoose,
		IE:         ie.Options{Strategy: strat, Reorder: true, Advice: true, PathExpression: true},
	}
	if braidLayer {
		cfg.Comparator = core.ComparatorBrAID
		cfg.CMS = cache.Options{Features: cache.AllFeatures(), Costs: remotedb.DefaultCosts()}
	}
	sys, err := core.NewSystem(w.KB, client, cfg)
	if err != nil {
		panic(err)
	}
	queries := w.Queries
	if only != nil {
		queries = only
	}
	for _, q := range queries {
		sol, err := sys.Ask(q)
		if err != nil {
			panic(fmt.Sprintf("E1 %s: %v", q, err))
		}
		if allSolutions {
			seen := map[string]bool{}
			for {
				sub, ok := sol.Next()
				if !ok {
					break
				}
				seen[sub.String()] = true
			}
			answers += len(seen)
		} else {
			if _, ok := sol.Next(); ok {
				answers++
			}
			sol.Close()
		}
		if sol.Err() != nil {
			panic(sol.Err())
		}
	}
	st := sys.Stats()
	return statsView{
		RemoteRequests: st.RemoteRequests,
		RemoteTuples:   st.RemoteTuples,
		ResponseSimMS:  st.ResponseSimMS,
	}, answers
}

// statsView keeps experiment code independent of the full stats struct.
type statsView struct {
	RemoteRequests int64
	RemoteTuples   int64
	ResponseSimMS  float64
}
