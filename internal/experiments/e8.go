package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E8ParallelSubqueries tests Section 5's feature (e): "support for parallel
// execution of subqueries on both the CMS and the remote DBMS". A query
// decomposes into a cached piece (local work) and a remote residual; with
// parallel execution the response time is the max of the branches rather
// than their sum.
func E8ParallelSubqueries() *Table {
	t := &Table{
		ID:     "E8",
		Title:  "sequential vs parallel cache/remote subquery execution",
		Claim:  "overlapping local piece work with the remote residual fetch cuts response time toward max(local, remote) (Section 5(e))",
		Header: []string{"parallel", "latency(ms)", "partial-hits", "simResp(ms)"},
	}
	for _, latency := range []float64{20, 100, 400} {
		for _, par := range []bool{false, true} {
			res := RunE8(par, latency)
			t.AddRow(onOff(par), ff(latency), fi(res.partial), ff(res.respMS))
		}
	}
	t.Notes = append(t.Notes, "the gap equals min(local, remote) per decomposed query")
	return t
}

type e8Result struct {
	partial int64
	respMS  float64
}

// RunE8 runs the decomposable-join session with parallel execution on or
// off at the given latency.
func RunE8(parallel bool, latencyMS float64) e8Result {
	w := workload.Chain(37, 6000, 50)
	costs := remotedb.DefaultCosts()
	costs.PerRequest = latencyMS
	// Raise local op cost so piece materialization is comparable to a round
	// trip (a busy workstation; the paper's CMS computes joins locally).
	costs.PerLocalOp = 0.02
	f := cache.AllFeatures()
	f.Prefetch = false
	f.Generalization = false
	f.Parallel = parallel
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs})
	s := cms.BeginSession(nil).(*cache.Session)
	defer s.End()

	// Warm: cache all of b2.
	if stream, err := s.Query(caql.MustParse("w(X, Y) :- b2(X, Y)")); err != nil {
		panic(err)
	} else {
		stream.Drain("warm")
	}
	base := cms.Stats().ResponseSimMS
	// Decomposable joins: b2 from cache, b3 residual remote.
	for i := 0; i < 4; i++ {
		q := caql.MustParse(fmt.Sprintf(`j%d(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != %d`, i, i))
		stream, err := s.Query(q)
		if err != nil {
			panic(fmt.Sprintf("E8: %v", err))
		}
		stream.Drain("out")
	}
	st := cms.Stats()
	return e8Result{partial: st.PartialHits, respMS: st.ResponseSimMS - base}
}
