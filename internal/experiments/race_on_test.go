//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this test binary.
// Performance-ratio assertions are skipped under it: the instrumented runtime
// serializes goroutines and inflates latencies far past any useful floor.
const raceEnabled = true
