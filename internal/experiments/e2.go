package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/caql"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// e2QueryMix builds a CAQL session with heavy *overlap* but few exact
// repeats: a general scan, then instances, ranges and sub-ranges of it. Only
// subsumption-based reuse can serve the non-identical queries locally.
func e2QueryMix() []*caql.Query {
	mk := func(src string) *caql.Query { return caql.MustParse(src) }
	return []*caql.Query{
		mk(`q0(X, Y, Z) :- b3(X, "c2", Z) & b2(Z, Y)`),                // general join view
		mk(`q1(X, Z) :- b3(X, "c2", Z)`),                              // projection of a cached subexpression
		mk(`q2(X, Z) :- b3(X, "c2", Z) & X < 10`),                     // range restriction
		mk(`q3(X, Z) :- b3(X, "c2", Z) & X < 5`),                      // tighter range
		mk(`q4(Z) :- b3(3, "c2", Z)`),                                 // instance
		mk(`q5(Z) :- b3(7, "c2", Z)`),                                 // another instance
		mk(`q1b(P, R) :- b3(P, "c2", R)`),                             // alpha-variant (exact hit)
		mk(`q6(X, Y) :- b3(X, "c2", Z) & b2(Z, Y) & X >= 2 & X <= 6`), // join + range
		mk(`q7(Y) :- b3(4, "c2", Z) & b2(Z, Y)`),                      // bound join instance
		mk(`q8(X, Z) :- b3(X, "c2", Z) & Z != 0`),                     // inequality restriction
	}
}

// E2CachingStrategies compares reuse regimes on the overlap mix: no caching,
// exact-match result caching ([IOAN88]/[SELL87]), single-relation caching
// ([CERI86]), and BrAID's subsumption.
func E2CachingStrategies() *Table {
	t := &Table{
		ID:     "E2",
		Title:  "caching strategy vs reuse on overlapping query mix",
		Claim:  "subsumption over cached views reuses more data than exact-match or single-relation caching (Sections 2, 5.3.2)",
		Header: []string{"strategy", "queries", "remote", "tuples", "full-hits", "partial", "hit-rate", "simResp(ms)"},
	}
	for _, comp := range []core.Comparator{core.ComparatorLoose, core.ComparatorExact, core.ComparatorSingleRel, core.ComparatorBrAID} {
		st := RunE2(comp)
		hitRate := float64(st.CacheHits+st.PartialHits) / float64(st.Queries)
		t.AddRow(string(comp), fi(st.Queries), fi(st.RemoteRequests), fi(st.RemoteTuples),
			fi(st.CacheHits), fi(st.PartialHits), fp(hitRate), ff(st.ResponseSimMS))
	}
	t.Notes = append(t.Notes,
		"singlerel ships whole relations up front (few requests, many tuples); braid reuses overlapping views with bounded transfer")
	return t
}

// RunE2 runs the overlap query mix under one caching comparator.
func RunE2(comp core.Comparator) bridge.SourceStats {
	w := workload.Chain(13, 400, 30)
	client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
	ds, err := dataSourceFor(comp, client)
	if err != nil {
		panic(err)
	}
	session := ds.BeginSession(nil)
	defer session.End()
	for _, q := range e2QueryMix() {
		stream, err := session.Query(q)
		if err != nil {
			panic(fmt.Sprintf("E2 %s: %s: %v", comp, q, err))
		}
		stream.Drain("out")
	}
	return ds.Stats()
}

// dataSourceFor builds the comparator's data source over a client (shared by
// several experiments).
func dataSourceFor(comp core.Comparator, client remotedb.Client) (bridge.DataSource, error) {
	cfg := core.DefaultConfig()
	cfg.Comparator = comp
	sys, err := core.NewSystem(emptyKB(), client, cfg)
	if err != nil {
		return nil, err
	}
	return sys.DS, nil
}

func emptyKB() *logic.KB { return logic.NewKB() }

// verifyE2Consistency cross-checks every comparator's answers against direct
// evaluation; used by the test suite.
func verifyE2Consistency() error {
	w := workload.Chain(13, 100, 20)
	src := w.Source()
	for _, comp := range []core.Comparator{core.ComparatorLoose, core.ComparatorExact, core.ComparatorSingleRel, core.ComparatorBrAID} {
		client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
		ds, err := dataSourceFor(comp, client)
		if err != nil {
			return err
		}
		session := ds.BeginSession(&advice.Advice{})
		for _, q := range e2QueryMix() {
			stream, err := session.Query(q)
			if err != nil {
				return fmt.Errorf("%s: %s: %w", comp, q, err)
			}
			got := stream.Drain("got")
			want, err := caql.Eval(q, src)
			if err != nil {
				return err
			}
			if !got.EqualAsSet(want) {
				return fmt.Errorf("%s: inconsistent answer for %s:\ngot %v\nwant %v",
					comp, q, sorted(got), sorted(want))
			}
		}
		session.End()
	}
	return nil
}

func sorted(r *relation.Relation) *relation.Relation {
	return relation.DistinctRel(r).Sort()
}
