package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/remotedb"
)

// E15 measures mid-stream failure recovery: what resumable v2 streams buy a
// consumer when connections die while results are in flight.
//
// A client drains a streamed scan repeatedly against servers whose listeners
// sever streamed-result connections at increasing rates (ListenerFaults
// StreamKillRate), in two arms: resume ON (the ResilientStream wrapper
// re-dispatches with the header's resume token) and resume OFF (the pre-token
// behavior — a mid-stream death surfaces to the consumer). Per arm it records
// the completion rate, the first-tuple and full-drain latency percentiles of
// completed streams, and how many repairs the client performed. Every
// completed stream is integrity-checked against the expected cardinality:
// resume must never trade correctness for availability.

// E15Arm is one (kill rate, resume on/off) configuration.
type E15Arm struct {
	KillRate      float64 `json:"kill_rate"`
	Resume        bool    `json:"resume"`
	Streams       int64   `json:"streams"`
	Completed     int64   `json:"completed"`
	CompletionPct float64 `json:"completion_pct"`
	Resumes       int64   `json:"resumes"`   // client-side mid-stream repairs
	ServerKills   int64   `json:"srv_kills"` // listener-side severed connections
	FirstP50US    int64   `json:"first_p50_us"`
	FirstP99US    int64   `json:"first_p99_us"`
	DrainP50US    int64   `json:"drain_p50_us"`
	DrainP99US    int64   `json:"drain_p99_us"`
}

// E15Data is the machine-readable result (part of braid-bench -json output).
type E15Data struct {
	Experiment  string   `json:"experiment"`
	ScanRows    int      `json:"scan_rows"`
	FrameTuples int      `json:"frame_tuples"`
	Arms        []E15Arm `json:"arms"`
	// ResumeCompletionPct / NoResumeCompletionPct compare the two arms at the
	// highest kill rate — the headline: resume keeps completion at 100% where
	// the control arm collapses.
	ResumeCompletionPct   float64 `json:"resume_completion_pct"`
	NoResumeCompletionPct float64 `json:"no_resume_completion_pct"`
}

const e15FrameTuples = 64

// e15Pct returns the p-th percentile of a sorted-in-place sample (0 when
// empty: an arm may complete nothing).
func e15Pct(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[int(p*float64(len(ds)-1))]
}

// e15MeasureArm drains `streams` sequential scans against a listener killing
// at killRate, with resume on or off.
func e15MeasureArm(scanRows, streams int, killRate float64, resume bool) (E15Arm, error) {
	arm := E15Arm{KillRate: killRate, Resume: resume}
	eng := remotedb.NewEngine()
	eng.LoadTable(e14ScanTable(scanRows))
	srv := remotedb.NewServerWithOptions(eng, remotedb.ServerOptions{
		FrameTuples: e15FrameTuples,
		Faults: &remotedb.ListenerFaults{
			Seed:            15,
			StreamKillRate:  killRate,
			StreamKillAfter: 2,
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return arm, err
	}
	defer srv.Close()

	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:           2,
		FrameTuples:    e15FrameTuples,
		Redial:         true,
		Costs:          remotedb.DefaultCosts(),
		HealthInterval: 10 * time.Millisecond,
		HealthSeed:     15,
	})
	if err != nil {
		return arm, err
	}
	// Same stance as the chaos storm: the breaker is for a remote that is
	// DOWN, and would otherwise fast-fail the resumes this experiment exists
	// to measure; retries bound consecutive zero-progress lives.
	rc := remotedb.NewResilientClient(p, remotedb.Resilience{
		JitterSeed:          15,
		MaxRetries:          50,
		BreakerFailures:     -1,
		BaseBackoff:         200 * time.Microsecond,
		MaxBackoff:          2 * time.Millisecond,
		DisableStreamResume: !resume,
	})
	defer rc.Close()

	var firsts, drains []time.Duration
	for i := 0; i < streams; i++ {
		arm.Streams++
		t0 := time.Now()
		st, err := rc.ExecStream(context.Background(), e14Scan)
		if err != nil {
			continue // failed stream: counted by Streams-Completed
		}
		var n int64
		var first time.Duration
		for {
			_, ok := st.Next()
			if !ok {
				break
			}
			if n == 0 {
				first = time.Since(t0)
			}
			n++
		}
		if st.Err() != nil {
			continue
		}
		if n != int64(scanRows) {
			return arm, fmt.Errorf("E15 integrity: completed stream delivered %d of %d tuples (killRate=%.2f resume=%v)",
				n, scanRows, killRate, resume)
		}
		arm.Completed++
		firsts = append(firsts, first)
		drains = append(drains, time.Since(t0))
	}
	if arm.Streams > 0 {
		arm.CompletionPct = 100 * float64(arm.Completed) / float64(arm.Streams)
	}
	arm.Resumes = rc.ResilienceStats().StreamResumes
	arm.ServerKills = srv.ServerStats().StreamKills
	arm.FirstP50US = e15Pct(firsts, 0.50).Microseconds()
	arm.FirstP99US = e15Pct(firsts, 0.99).Microseconds()
	arm.DrainP50US = e15Pct(drains, 0.50).Microseconds()
	arm.DrainP99US = e15Pct(drains, 0.99).Microseconds()
	return arm, nil
}

// RunE15 measures every (kill rate x resume) arm at the given scale.
func RunE15(scanRows, streams int) (*E15Data, error) {
	data := &E15Data{
		Experiment:  "E15 mid-stream failure recovery",
		ScanRows:    scanRows,
		FrameTuples: e15FrameTuples,
	}
	for _, rate := range []float64{0.0, 0.5, 1.0} {
		for _, resume := range []bool{true, false} {
			if rate == 0 && !resume {
				continue // identical to (0, resume=on): nothing to repair
			}
			arm, err := e15MeasureArm(scanRows, streams, rate, resume)
			if err != nil {
				return nil, err
			}
			data.Arms = append(data.Arms, arm)
			if rate == 1.0 {
				if resume {
					data.ResumeCompletionPct = arm.CompletionPct
				} else {
					data.NoResumeCompletionPct = arm.CompletionPct
				}
			}
		}
	}
	return data, nil
}

// RunE15Bench runs E15 at the braid-bench default scale: a 4k-tuple scan is
// ~63 frames at frame size 64, so a kill-after-2-frames fault leaves ~97% of
// the result undelivered — a failure resume must repair dozens of times per
// stream at kill rate 1.
func RunE15Bench() (*E15Data, error) {
	return RunE15(4000, 30)
}

// E15Render formats the measurement as the experiment table.
func E15Render(d *E15Data) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "mid-stream failure recovery: resumable streams under connection kills",
		Claim:  "resume tokens let streamed results survive mid-stream connection deaths: completion stays at 100% at kill rates that collapse the non-resuming client, with no duplicated or lost tuples",
		Header: []string{"killRate", "resume", "completed", "resumes", "srvKills", "first p50(us)", "first p99(us)", "drain p50(us)", "drain p99(us)"},
	}
	for _, a := range d.Arms {
		onOff := "off"
		if a.Resume {
			onOff = "on"
		}
		t.AddRow(
			fmt.Sprintf("%.1f", a.KillRate), onOff,
			fmt.Sprintf("%d/%d (%.0f%%)", a.Completed, a.Streams, a.CompletionPct),
			fi(a.Resumes), fi(a.ServerKills),
			fi(a.FirstP50US), fi(a.FirstP99US), fi(a.DrainP50US), fi(a.DrainP99US))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scan is %d tuples in %d-tuple frames; kills sever the connection two frames in, so an unrepaired death loses ~97%% of the result", d.ScanRows, d.FrameTuples),
		fmt.Sprintf("completion at kill rate 1.0: resume on %.0f%% vs off %.0f%% (acceptance: on = 100%%, off < 100%%)", d.ResumeCompletionPct, d.NoResumeCompletionPct),
		"every completed stream is integrity-checked against the expected cardinality; percentiles are over completed streams only")
	return t
}

// E15StreamRecovery runs the experiment at default scale for the bench
// registry; errors surface as a note rather than a panic.
func E15StreamRecovery() *Table {
	d, err := RunE15Bench()
	if err != nil {
		return &Table{ID: "E15", Title: "mid-stream failure recovery (failed)",
			Header: []string{"error"}, Rows: [][]string{{err.Error()}}}
	}
	return E15Render(d)
}
