package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/remotedb"
)

// E19 measures morsel-driven parallel execution in the remote engine: the
// same query shapes as E16 (scan, join, grouped aggregate) drained at
// DOP 1/2/4/8 over the same data.
//
// Part A — speedup vs degree of parallelism. CI machines (and this
// container) may expose a single core, where real CPU overlap is
// impossible, so the sweep runs under the engine's per-morsel service-time
// model (SetMorselStall): every morsel of base-table rows charges a fixed
// simulated fetch latency on whichever executor reads it. The serial scan
// sleeps once per morsel-sized run of examined rows and parallel workers
// sleep once per claimed morsel, so both arms pay identical total stall and
// the measured speedup is genuine overlap of that latency — the morsel
// pool's actual contribution, independent of host core count. This is the
// DOP-sweep analogue of E14's 1 ms service-time model.
//
// Part B — first-tuple latency. Parallelism must not buy throughput by
// selling interactivity: the bounded exchange hands the consumer the first
// worker batch as soon as any worker fills one. With the stall model off,
// the pipelined join is streamed over TCP serially and at DOP 4; the
// first-tuple ratio is the price of the exchange hop.
//
// Part C — engine accounting. The cumulative parallel counters (streams,
// morsels, workers, serial fallbacks) after the sweep confirm the parallel
// path actually ran and the DOP-1 arms actually fell back to serial.

// E19Shape is one Part A measurement: a query shape drained at one DOP.
type E19Shape struct {
	Shape   string  `json:"shape"` // "scan" | "join" | "agg"
	DOP     int     `json:"dop"`
	DrainUS int64   `json:"drain_us"`
	Tuples  int64   `json:"tuples"`
	Ops     int64   `json:"ops"`     // server tuple operations (one run)
	Speedup float64 `json:"speedup"` // drain(dop 1) / drain(this dop)
}

// E19Data is the machine-readable result (braid-bench -json writes it as
// part of BENCH_PR10.json).
type E19Data struct {
	Experiment   string `json:"experiment"`
	Rows         int    `json:"rows"`
	NumCPU       int    `json:"num_cpu"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	StallUS      int64  `json:"stall_us"`      // per-morsel simulated fetch latency
	MorselTuples int    `json:"morsel_tuples"` // scan split granularity

	DOPs   []int      `json:"dops"`
	Shapes []E19Shape `json:"shapes"`

	// Part A headline ratios: drain(dop 1) / drain(dop 4) per shape.
	ScanSpeedup4 float64 `json:"scan_speedup_4"`
	JoinSpeedup4 float64 `json:"join_speedup_4"`
	AggSpeedup4  float64 `json:"agg_speedup_4"`

	// Part B: median first-tuple latency of the streamed join, serial vs
	// DOP 4, stall model off.
	FirstTupleSerialUS int64   `json:"first_tuple_serial_us"`
	FirstTupleParUS    int64   `json:"first_tuple_par_us"`
	FirstTupleRatio    float64 `json:"first_tuple_ratio"` // par / serial

	// Part C: cumulative engine counters after the whole run.
	ParStreams   int64 `json:"par_streams"`
	ParMorsels   int64 `json:"par_morsels"`
	ParWorkers   int64 `json:"par_workers"`
	ParFallbacks int64 `json:"par_fallbacks"`
}

// e19Drain executes sql engine-direct and returns the median drain time
// plus the (run-stable) ops and cardinality, warming once first so plan
// compilation is not in the timing.
func e19Drain(eng *remotedb.Engine, sql string, iters int) (drain time.Duration, ops, tuples int64, err error) {
	if _, _, err := eng.ExecuteSQL(sql); err != nil {
		return 0, 0, 0, err
	}
	ds := make([]time.Duration, 0, iters)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		rel, o, err := eng.ExecuteSQL(sql)
		if err != nil {
			return 0, 0, 0, err
		}
		ds = append(ds, time.Since(t0))
		ops, tuples = o, int64(rel.Len())
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2], ops, tuples, nil
}

// RunE19 runs the sweep at the given scale. stall is the per-morsel
// simulated fetch latency for Part A; Part B always runs with it off.
func RunE19(rows, iters int, stall time.Duration) (*E19Data, error) {
	eng := remotedb.NewEngine()
	if err := e16Tables(eng, rows, 500); err != nil {
		return nil, err
	}
	data := &E19Data{
		Experiment:   "E19 morsel-driven parallel execution",
		Rows:         rows,
		NumCPU:       runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StallUS:      stall.Microseconds(),
		MorselTuples: eng.MorselSize(),
		DOPs:         []int{1, 2, 4, 8},
	}

	// Part A: the DOP sweep under the service-time model, engine-direct so
	// the wire transport is not in the denominator. ParallelMinRows stays at
	// its default — the workload is far above the threshold, which is itself
	// part of what the sweep exercises (the DOP-1 arms count as fallbacks).
	eng.SetMorselStall(stall)
	type shapeArm struct{ shape, sql string }
	arms := []shapeArm{{"scan", e16Scan}, {"join", e16Join}, {"agg", e16Agg}}
	base := map[string]time.Duration{}
	for _, dop := range data.DOPs {
		eng.SetParallelism(dop)
		for _, a := range arms {
			d, ops, tuples, err := e19Drain(eng, a.sql, iters)
			if err != nil {
				return nil, fmt.Errorf("%s at dop %d: %w", a.shape, dop, err)
			}
			s := E19Shape{Shape: a.shape, DOP: dop,
				DrainUS: d.Microseconds(), Tuples: tuples, Ops: ops}
			if dop == 1 {
				base[a.shape] = d
			} else if b := base[a.shape]; b > 0 && d > 0 {
				s.Speedup = float64(b) / float64(d)
			}
			if dop == 1 {
				s.Speedup = 1
			}
			data.Shapes = append(data.Shapes, s)
			switch {
			case dop == 4 && a.shape == "scan":
				data.ScanSpeedup4 = s.Speedup
			case dop == 4 && a.shape == "join":
				data.JoinSpeedup4 = s.Speedup
			case dop == 4 && a.shape == "agg":
				data.AggSpeedup4 = s.Speedup
			}
		}
	}

	// Part B: streamed first-tuple latency with the stall model off. The
	// exchange must not regress interactivity: the first joined tuple at
	// DOP 4 should cost about what it costs serially.
	eng.SetMorselStall(0)
	srv := remotedb.NewServerWithOptions(eng, remotedb.ServerOptions{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:        1,
		FrameTuples: 512,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	ftIters := 2*iters + 3 // first-tuple medians are noisier than drains
	eng.SetParallelism(1)
	ftSerial, _, _, err := e16Measure(p, e16Join, ftIters)
	if err != nil {
		return nil, fmt.Errorf("first-tuple serial: %w", err)
	}
	eng.SetParallelism(4)
	ftPar, _, _, err := e16Measure(p, e16Join, ftIters)
	if err != nil {
		return nil, fmt.Errorf("first-tuple dop 4: %w", err)
	}
	data.FirstTupleSerialUS = ftSerial.Microseconds()
	data.FirstTupleParUS = ftPar.Microseconds()
	if ftSerial > 0 {
		data.FirstTupleRatio = float64(ftPar) / float64(ftSerial)
	}

	st := eng.ParallelStats()
	data.ParStreams = st.Streams
	data.ParMorsels = st.Morsels
	data.ParWorkers = st.Workers
	data.ParFallbacks = st.SerialFallbacks
	return data, nil
}

// RunE19Bench runs E19 at the braid-bench default scale: the E16 40k-row
// workload under a 1 ms per-morsel stall (about 40 morsels per scan of the
// driver table, so roughly 40 ms of simulated fetch latency per serial
// drain for the parallel arms to overlap).
func RunE19Bench() (*E19Data, error) {
	return RunE19(40000, 3, time.Millisecond)
}

// E19Render formats the measurement as the experiment table.
func E19Render(d *E19Data) *Table {
	t := &Table{
		ID:    "E19",
		Title: "morsel-driven parallel execution: speedup vs DOP",
		Claim: "eligible plans split base-table scans into morsels claimed by a bounded worker pool; drains speed up with DOP under the per-morsel service-time model while the bounded exchange keeps first-tuple latency at the serial price",
		Header: []string{"shape", "dop", "drain(us)", "speedup", "tuples", "serverOps"},
	}
	for _, s := range d.Shapes {
		t.AddRow(s.Shape, fi(int64(s.DOP)), fi(s.DrainUS), ff(s.Speedup),
			fi(s.Tuples), fi(s.Ops))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("rows=%d, morsel=%d tuples, per-morsel stall=%dus, host NumCPU=%d; stall charges both arms identically, so speedup is overlap of simulated fetch latency, not host core count (acceptance: agg dop4 >= 1.8x)",
			d.Rows, d.MorselTuples, d.StallUS, d.NumCPU),
		fmt.Sprintf("dop4 speedups: scan %.2fx, join %.2fx, agg %.2fx", d.ScanSpeedup4, d.JoinSpeedup4, d.AggSpeedup4),
		fmt.Sprintf("streamed join first tuple (stall off): serial %dus vs dop4 %dus (%.2fx; acceptance: <= 1.2x plus scheduler noise)",
			d.FirstTupleSerialUS, d.FirstTupleParUS, d.FirstTupleRatio),
		fmt.Sprintf("engine counters: %d parallel streams, %d morsels, %d workers, %d serial fallbacks (the dop-1 arms)",
			d.ParStreams, d.ParMorsels, d.ParWorkers, d.ParFallbacks))
	return t
}

// E19ParallelExecution runs the experiment at default scale for the bench
// registry.
func E19ParallelExecution() *Table {
	d, err := RunE19Bench()
	if err != nil {
		return &Table{ID: "E19", Title: "morsel-driven parallel execution (failed)",
			Header: []string{"error"}, Rows: [][]string{{err.Error()}}}
	}
	return E19Render(d)
}
