package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E10FeatureAblation is the reproduction's Figure 2 analogue: the paper maps
// each CMS technique to the aspects of the impedance mismatch it alleviates;
// this experiment measures each technique's contribution by disabling one at
// a time on a fixed advice-driven session (the Example 1 shape with repeated
// consumer-bound instances — the workload every technique touches).
func E10FeatureAblation() *Table {
	t := &Table{
		ID:     "E10",
		Title:  "feature ablation: full BrAID minus one technique at a time",
		Claim:  "each technique of Figure 2 contributes to alleviating a distinct aspect of the impedance mismatch",
		Header: []string{"configuration", "remote", "tuples", "hits", "simResp(ms)"},
	}
	type cfg struct {
		name string
		mut  func(*cache.Features)
	}
	cfgs := []cfg{
		{"full braid", func(f *cache.Features) {}},
		{"- subsumption", func(f *cache.Features) { f.Subsumption = false }},
		{"- exact-match", func(f *cache.Features) { f.ExactMatch = false }},
		{"- result-caching", func(f *cache.Features) { f.ResultCaching = false }},
		{"- generalization", func(f *cache.Features) { f.Generalization = false }},
		{"- prefetch", func(f *cache.Features) { f.Prefetch = false }},
		{"- indexing", func(f *cache.Features) { f.Indexing = false }},
		{"- parallel", func(f *cache.Features) { f.Parallel = false }},
		{"all off (loose)", func(f *cache.Features) { *f = cache.Features{} }},
	}
	for _, c := range cfgs {
		f := cache.AllFeatures()
		c.mut(&f)
		st := RunE10(f)
		t.AddRow(c.name, fi(st.RemoteRequests), fi(st.RemoteTuples),
			fi(st.CacheHits+st.PartialHits), ff(st.ResponseSimMS))
	}
	t.Notes = append(t.Notes,
		"the session mixes repeats, instances, decomposable joins and follower chains so every technique participates",
		"request counts are not monotone: without prefetch the generalized element covers the followers (fewer, wider fetches); without result caching, generalization refetches its wide result every time — the techniques interact")
	return t
}

// e10Sequence is the ablation session's query list: d1 once, then (d2, d3)
// instance pairs (prefetch + generalization territory), an exact repeat, and
// decomposable joins (subsumption + parallel territory). E12 replays the same
// sequence from concurrent sessions.
func e10Sequence() []*caql.Query {
	qs := []*caql.Query{caql.MustParse(`d1(Y) :- b1("c1", Y)`)}
	d2t := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	d3t := caql.MustParse(`d3(X, Y) :- b3(X, "c3", Z) & b1(Z, Y)`)
	for c := 0; c < 6; c++ {
		bind := map[string]relation.Value{"Y": relation.Int(int64(c))}
		qs = append(qs, d2t.Instantiate(bind), d3t.Instantiate(bind))
	}
	qs = append(qs,
		caql.MustParse(`d1(Y) :- b1("c1", Y)`), // exact repeat
		caql.MustParse(`j1(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 1`),
		caql.MustParse(`j2(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W != 2`))
	return qs
}

// RunE10 runs the ablation session under the given feature set.
func RunE10(f cache.Features) bridge.SourceStats {
	w := workload.Chain(53, 700, 24)
	costs := remotedb.DefaultCosts()
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs, ThinkTimeMS: 100, PredictHorizon: 16})
	adv := advice.MustParse(e4Advice)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	for _, q := range e10Sequence() {
		stream, err := s.Query(q)
		if err != nil {
			panic(fmt.Sprintf("E10: %s: %v", q, err))
		}
		stream.Drain("out")
	}

	return cms.Stats()
}
