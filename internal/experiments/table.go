// Package experiments implements the reproduction's evaluation suite E1–E14
// (see DESIGN.md Section 5): one experiment per directional claim of the
// paper, each producing a table in the style a systems paper would report.
// The suite is shared by the repository's testing.B benchmarks
// (bench_test.go) and by cmd/braid-bench.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a title, column headers, and formatted
// rows.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim under test
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Cell formatting helpers.
func fi(v int64) string   { return fmt.Sprintf("%d", v) }
func ff(v float64) string { return fmt.Sprintf("%.1f", v) }
func fp(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// All runs every experiment with default parameters, in order.
func All() []*Table {
	return []*Table{
		E1ICRange(), E2CachingStrategies(), E3LazyVsEager(), E4Prefetching(),
		E5Generalization(), E6AttributeIndexing(), E7Replacement(),
		E8ParallelSubqueries(), E9SubsumptionOverhead(), E10FeatureAblation(),
		E11FaultTolerance(), E12ConcurrentScaling(),
	}
}
