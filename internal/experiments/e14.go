package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/remotedb"
)

// E14 measures the framed (wire v2) stream transport against the legacy
// monolithic protocol over real TCP connections.
//
// Part A — first-tuple latency. One client scans a large table. On v1 the
// whole relation is encoded, shipped, and decoded before the caller sees
// anything; on v2 the first frame arrives after frameTuples tuples, so the
// time-to-first-tuple is O(one frame) instead of O(result). Frame size trades
// first-tuple latency against per-frame overhead on the full drain.
//
// Part B — multi-session throughput. Eight session goroutines share one
// client against a server whose per-request service time is a deterministic
// 1ms stall (ListenerFaults as a service-time model) and which executes
// requests of one connection serially (ConnStreams = 1, the paper's
// session-oriented DBMS). A pool of N connections then overlaps N requests,
// so throughput scales with the pool by latency hiding — this holds even on
// a single-core host, which is why the experiment models service time as a
// stall rather than as CPU work.

// E14Frame is one Part A configuration: a transport and frame size with its
// measured latencies (medians over the iterations) and allocation rate.
type E14Frame struct {
	Transport    string `json:"transport"`      // "v1-monolithic" | "v2-stream"
	FrameTuples  int    `json:"frame_tuples"`   // 0 on v1
	FirstTupleUS int64  `json:"first_tuple_us"` // median time to first tuple
	DrainUS      int64  `json:"drain_us"`       // median time to full result
	AllocsPerOp  int64  `json:"allocs_per_op"`  // client-side allocations per query
	Tuples       int64  `json:"tuples"`         // result cardinality
}

// E14Pool is one Part B configuration: a pool size with its aggregate
// throughput and per-query latency percentiles.
type E14Pool struct {
	PoolSize int     `json:"pool_size"`
	Sessions int     `json:"sessions"`
	Queries  int64   `json:"queries"`
	QPS      float64 `json:"qps"`
	P50US    int64   `json:"p50_us"`
	P99US    int64   `json:"p99_us"`
}

// E14Data is the machine-readable result of the whole experiment
// (braid-bench -json writes it as BENCH_PR6.json).
type E14Data struct {
	Experiment        string     `json:"experiment"`
	ScanRows          int        `json:"scan_rows"`
	FirstTuple        []E14Frame `json:"first_tuple"`
	Throughput        []E14Pool  `json:"throughput"`
	FirstTupleSpeedup float64    `json:"first_tuple_speedup"` // v1 / best v2
	PoolScalingQPS    float64    `json:"pool_scaling_qps"`    // QPS(pool 8) / QPS(pool 1)
}

// e14ScanTable builds the Part A scan target: rows tuples of (int, int,
// string), large enough that monolithic encode+ship+decode dominates.
func e14ScanTable(rows int) *relation.Relation {
	r := relation.New("scan", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "grp", Kind: relation.KindInt},
		relation.Attr{Name: "tag", Kind: relation.KindString}))
	r.Grow(rows)
	for i := 0; i < rows; i++ {
		r.MustAppend(relation.Tuple{
			relation.Int(int64(i)),
			relation.Int(int64(i % 97)),
			relation.Str(fmt.Sprintf("tag-%03d", i%251)),
		})
	}
	return r
}

// e14Median returns the median of a small sample.
func e14Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds[len(ds)/2]
}

const e14Scan = "SELECT * FROM scan"

// e14MeasureV1 times the monolithic transport: the first tuple is only
// available once Exec returns the whole relation.
func e14MeasureV1(addr string, iters int) (E14Frame, error) {
	c, err := remotedb.DialTCP(addr, remotedb.DefaultCosts())
	if err != nil {
		return E14Frame{}, err
	}
	defer c.Close()
	if _, err := c.Exec(e14Scan); err != nil { // warm up (connection, gob types)
		return E14Frame{}, err
	}
	firsts := make([]time.Duration, 0, iters)
	var tuples int64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		res, err := c.Exec(e14Scan)
		if err != nil {
			return E14Frame{}, err
		}
		firsts = append(firsts, time.Since(t0))
		tuples = int64(res.Rel.Len())
	}
	runtime.ReadMemStats(&ms1)
	med := e14Median(firsts)
	return E14Frame{
		Transport:    "v1-monolithic",
		FirstTupleUS: med.Microseconds(),
		DrainUS:      med.Microseconds(), // monolithic: first tuple == full result
		AllocsPerOp:  int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		Tuples:       tuples,
	}, nil
}

// e14MeasureV2 times the streamed transport at one frame size: time to the
// first Next and time to exhaustion.
func e14MeasureV2(addr string, frameTuples, iters int) (E14Frame, error) {
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:        1,
		FrameTuples: frameTuples,
		Costs:       remotedb.DefaultCosts(),
	})
	if err != nil {
		return E14Frame{}, err
	}
	defer p.Close()
	run := func() (first, drain time.Duration, n int64, err error) {
		t0 := time.Now()
		st, err := p.ExecStream(context.Background(), e14Scan)
		if err != nil {
			return 0, 0, 0, err
		}
		for {
			_, ok := st.Next()
			if !ok {
				break
			}
			if n == 0 {
				first = time.Since(t0)
			}
			n++
		}
		return first, time.Since(t0), n, st.Err()
	}
	if _, _, _, err := run(); err != nil { // warm up
		return E14Frame{}, err
	}
	firsts := make([]time.Duration, 0, iters)
	drains := make([]time.Duration, 0, iters)
	var tuples int64
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	for i := 0; i < iters; i++ {
		first, drain, n, err := run()
		if err != nil {
			return E14Frame{}, err
		}
		firsts = append(firsts, first)
		drains = append(drains, drain)
		tuples = n
	}
	runtime.ReadMemStats(&ms1)
	return E14Frame{
		Transport:    "v2-stream",
		FrameTuples:  frameTuples,
		FirstTupleUS: e14Median(firsts).Microseconds(),
		DrainUS:      e14Median(drains).Microseconds(),
		AllocsPerOp:  int64(ms1.Mallocs-ms0.Mallocs) / int64(iters),
		Tuples:       tuples,
	}, nil
}

// e14MeasurePool runs Part B for one pool size: sessions goroutines issue
// perSession point queries each through one shared pool client against the
// 1ms-per-request session-serial server.
func e14MeasurePool(addr string, poolSize, sessions, perSession int) (E14Pool, error) {
	p, err := remotedb.DialPool(addr, remotedb.PoolOptions{
		Size:  poolSize,
		Costs: remotedb.DefaultCosts(),
	})
	if err != nil {
		return E14Pool{}, err
	}
	defer p.Close()
	if _, err := p.Exec("SELECT * FROM small"); err != nil { // warm up conn[0]
		return E14Pool{}, err
	}
	var (
		mu   sync.Mutex
		lats []time.Duration
		errs []error
		wg   sync.WaitGroup
	)
	t0 := time.Now()
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			for n := 0; n < perSession; n++ {
				q0 := time.Now()
				_, err := p.ExecCtx(context.Background(), "SELECT * FROM small")
				d := time.Since(q0)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					lats = append(lats, d)
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(t0)
	if len(errs) > 0 {
		return E14Pool{}, fmt.Errorf("pool %d: %d queries failed, first: %w", poolSize, len(errs), errs[0])
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
	return E14Pool{
		PoolSize: poolSize,
		Sessions: sessions,
		Queries:  int64(len(lats)),
		QPS:      float64(len(lats)) / wall.Seconds(),
		P50US:    pct(0.50).Microseconds(),
		P99US:    pct(0.99).Microseconds(),
	}, nil
}

// RunE14 runs both parts at the given scale. Frame sizes and pool sizes are
// fixed: {64, 512, 4096} tuples and {1, 4, 8} connections.
func RunE14(scanRows, iters, sessions, perSession int) (*E14Data, error) {
	data := &E14Data{Experiment: "E14 stream transport", ScanRows: scanRows}

	// Part A: plain server (no faults), both protocols side by side.
	engA := remotedb.NewEngine()
	engA.LoadTable(e14ScanTable(scanRows))
	srvA := remotedb.NewServerWithOptions(engA, remotedb.ServerOptions{})
	addrA, err := srvA.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srvA.Close()

	v1, err := e14MeasureV1(addrA, iters)
	if err != nil {
		return nil, err
	}
	data.FirstTuple = append(data.FirstTuple, v1)
	bestV2 := int64(0)
	for _, ft := range []int{64, 512, 4096} {
		f, err := e14MeasureV2(addrA, ft, iters)
		if err != nil {
			return nil, err
		}
		data.FirstTuple = append(data.FirstTuple, f)
		if bestV2 == 0 || f.FirstTupleUS < bestV2 {
			bestV2 = f.FirstTupleUS
		}
	}
	if bestV2 > 0 {
		data.FirstTupleSpeedup = float64(v1.FirstTupleUS) / float64(bestV2)
	}

	// Part B: session-serial server with a deterministic 1ms service stall.
	// Part A's scan garbage is collected first so GC assists do not bleed
	// into the throughput measurement.
	runtime.GC()
	engB := remotedb.NewEngine()
	small := relation.New("small", relation.NewSchema(
		relation.Attr{Name: "id", Kind: relation.KindInt},
		relation.Attr{Name: "tag", Kind: relation.KindString}))
	for i := 0; i < 64; i++ {
		small.MustAppend(relation.Tuple{relation.Int(int64(i)), relation.Str(fmt.Sprintf("t%d", i))})
	}
	engB.LoadTable(small)
	srvB := remotedb.NewServerWithOptions(engB, remotedb.ServerOptions{
		Faults: &remotedb.ListenerFaults{Seed: 14, DelayRate: 1, Delay: time.Millisecond},
	})
	addrB, err := srvB.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srvB.Close()

	for _, ps := range []int{1, 4, 8} {
		r, err := e14MeasurePool(addrB, ps, sessions, perSession)
		if err != nil {
			return nil, err
		}
		data.Throughput = append(data.Throughput, r)
	}
	if len(data.Throughput) == 3 && data.Throughput[0].QPS > 0 {
		data.PoolScalingQPS = data.Throughput[2].QPS / data.Throughput[0].QPS
	}
	return data, nil
}

// RunE14Bench runs E14 at the braid-bench default scale. The scan is large
// enough that the monolithic transport's O(result) first-tuple cost dominates
// constant factors (scheduling, GC) shared by both transports.
func RunE14Bench() (*E14Data, error) {
	return RunE14(60000, 5, 8, 25)
}

// E14Render formats the measurement as the experiment table.
func E14Render(d *E14Data) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "stream transport: first-tuple latency and pooled throughput",
		Claim:  "framed streaming delivers the first tuple in O(one frame) instead of O(result), and a connection pool over a session-serial remote scales multi-session throughput by latency hiding",
		Header: []string{"config", "frame", "firstTuple(us)", "drain(us)", "allocs/op", "qps", "p50(us)", "p99(us)"},
	}
	for _, f := range d.FirstTuple {
		frame := "-"
		if f.FrameTuples > 0 {
			frame = fi(int64(f.FrameTuples))
		}
		t.AddRow(f.Transport, frame, fi(f.FirstTupleUS), fi(f.DrainUS),
			fi(f.AllocsPerOp), "-", "-", "-")
	}
	for _, p := range d.Throughput {
		t.AddRow(fmt.Sprintf("pool=%d", p.PoolSize), "-", "-", "-", "-",
			ff(p.QPS), fi(p.P50US), fi(p.P99US))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scan is %d tuples; first-tuple speedup of the best frame size over v1 monolithic: %.1fx (acceptance: >= 5x)", d.ScanRows, d.FirstTupleSpeedup),
		fmt.Sprintf("throughput is %d sessions sharing one client against a 1ms-per-request session-serial server; QPS scaling pool 1 -> 8: %.1fx (acceptance: >= 3x)",
			e14Sessions(d), d.PoolScalingQPS),
		"the 1ms service time is a deterministic stall (ListenerFaults delay), so pool scaling reflects latency hiding and holds on a single-core host")
	return t
}

func e14Sessions(d *E14Data) int {
	if len(d.Throughput) > 0 {
		return d.Throughput[0].Sessions
	}
	return 0
}

// E14StreamTransport runs the experiment at default scale for the bench
// registry. Measurement errors surface as a note rather than a panic so one
// flaky environment does not take down the whole suite.
func E14StreamTransport() *Table {
	d, err := RunE14Bench()
	if err != nil {
		return &Table{ID: "E14", Title: "stream transport (failed)",
			Header: []string{"error"}, Rows: [][]string{{err.Error()}}}
	}
	return E14Render(d)
}
