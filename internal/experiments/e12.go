package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/advice"
	"repro/internal/bridge"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E12 measures the CMS as a concurrent multi-session server: K sessions
// replay the E10 ablation workload against ONE shared CMS, and we report
// aggregate wall-clock throughput (QPS), per-query latency percentiles, and
// the cache hit rate relative to a serial session. The paper positions the
// CMS between many IE clients and one remote DBMS; with a sharded cache
// manager, atomic stats, and a pooled prefetch pipeline, sessions should
// scale with cores rather than serialize on a global cache lock, and the
// shared cache should keep (or improve) the serial hit rate.

// E12Result is one concurrency level's measurement.
type E12Result struct {
	Sessions int
	Elapsed  time.Duration
	QPS      float64
	P50      time.Duration
	P99      time.Duration
	Stats    bridge.SourceStats
}

// RunE12 replays the E10 workload from k concurrent sessions over one shared
// CMS and aggregates wall-clock metrics. Sessions share the advice, so their
// predictors compose in the replacement registry and their prefetches land in
// one cache.
func RunE12(k int) E12Result {
	return runE12Instrumented(k, nil, nil)
}

// runE12Instrumented is RunE12 with an optional observability layer attached:
// a tracer sampling query spans and a metrics registry absorbing the CMS/pool
// counters. E17 uses it to price the instrumentation against the nil/nil
// control arm on an identical workload.
func runE12Instrumented(k int, tr *obs.Tracer, reg *obs.Registry) E12Result {
	w := workload.Chain(53, 700, 24)
	costs := remotedb.DefaultCosts()
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: cache.AllFeatures(), Costs: costs,
			ThinkTimeMS: 100, PredictHorizon: 16,
			Tracer: tr, Metrics: reg})

	lats := make([][]time.Duration, k)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := cms.BeginSession(advice.MustParse(e4Advice)).(*cache.Session)
			defer s.End()
			for _, q := range e10Sequence() {
				t0 := time.Now()
				stream, err := s.Query(q)
				if err != nil {
					panic(fmt.Sprintf("E12: %s: %v", q, err))
				}
				stream.Drain("out")
				lats[i] = append(lats[i], time.Since(t0))
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	st := cms.Stats()
	return E12Result{
		Sessions: k,
		Elapsed:  elapsed,
		QPS:      float64(st.Queries) / elapsed.Seconds(),
		P50:      pct(0.50),
		P99:      pct(0.99),
		Stats:    st,
	}
}

// E12ConcurrentScaling is the multi-session scaling table: K ∈ {1,2,4,8,16}
// sessions over one shared CMS. Hit rate at K>1 should be no worse than the
// serial session's (sharing a cache only helps); QPS should grow with K up
// to the core count.
func E12ConcurrentScaling() *Table {
	t := &Table{
		ID:     "E12",
		Title:  "concurrent multi-session scaling on one shared CMS",
		Claim:  "the sharded CMS serves concurrent sessions without serializing on the cache: aggregate QPS scales with sessions while the shared cache preserves the serial hit rate",
		Header: []string{"sessions", "QPS", "p50(us)", "p99(us)", "hit rate", "prefetches", "drops"},
	}
	var serialRate float64
	for _, k := range []int{1, 2, 4, 8, 16} {
		r := RunE12(k)
		rate := float64(r.Stats.CacheHits+r.Stats.PartialHits) / float64(r.Stats.Queries)
		if k == 1 {
			serialRate = rate
		}
		t.AddRow(fi(int64(k)), ff(r.QPS),
			fi(r.P50.Microseconds()), fi(r.P99.Microseconds()),
			fp(rate), fi(r.Stats.Prefetches), fi(r.Stats.PrefetchDrops))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d (wall-clock scaling is bounded by available cores; on a single core the table shows lock-contention overhead only)", runtime.GOMAXPROCS(0)),
		fmt.Sprintf("serial hit rate %.1f%% is the parity floor for every K", serialRate*100),
		"latencies are real wall-clock per-query times (not the simulated cost model); sim-clock stats remain per-session deterministic")
	return t
}
