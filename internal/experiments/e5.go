package experiments

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/workload"
)

// E5Generalization tests Section 5.3.1 step 1: when the path expression
// predicts repeated instances of a consumer-bound view (the backtracking
// loop d2(X, c) for successive constants c), the CMS may evaluate the more
// general query once and derive every instance from the cached result.
func E5Generalization() *Table {
	t := &Table{
		ID:     "E5",
		Title:  "query generalization vs number of repeated instances",
		Claim:  "generalizing a consumer-bound query trades one wider fetch for many narrow ones (Sections 4.2, 5.3.1)",
		Header: []string{"generalize", "instances", "remote", "tuples", "generalized", "simResp(ms)"},
	}
	for _, n := range []int{2, 8, 32} {
		for _, gen := range []bool{false, true} {
			st := RunE5(gen, n)
			t.AddRow(onOff(gen), fi(int64(n)), fi(st.RemoteRequests), fi(st.RemoteTuples), fi(st.Generalizations), ff(st.ResponseSimMS))
		}
	}
	t.Notes = append(t.Notes, "with generalization remote requests stay ~constant as instances grow; without, they grow linearly")
	return t
}

// RunE5 runs the repeated-instance session with generalization on or off.
func RunE5(generalize bool, instances int) statsE5 {
	w := workload.Chain(23, 800, instances+4)
	costs := remotedb.DefaultCosts()
	f := cache.AllFeatures()
	f.Prefetch = false // isolate generalization
	f.Generalization = generalize
	cms := cache.New(remotedb.NewInProcClient(w.Engine(), costs),
		cache.Options{Features: f, Costs: costs, PredictHorizon: 16})
	adv := advice.MustParse(e4Advice)
	s := cms.BeginSession(adv).(*cache.Session)
	defer s.End()

	d1 := caql.MustParse(`d1(Y) :- b1("c1", Y)`)
	if stream, err := s.Query(d1); err != nil {
		panic(err)
	} else {
		stream.Drain("ys")
	}
	d2t := caql.MustParse(`d2(X, Y) :- b2(X, Z) & b3(Z, "c2", Y)`)
	for c := 0; c < instances; c++ {
		inst := d2t.Instantiate(map[string]relation.Value{"Y": relation.Int(int64(c))})
		stream, err := s.Query(inst)
		if err != nil {
			panic(fmt.Sprintf("E5: %v", err))
		}
		stream.Drain("out")
	}
	st := cms.Stats()
	return statsE5{
		RemoteRequests:  st.RemoteRequests,
		RemoteTuples:    st.RemoteTuples,
		Generalizations: st.Generalizations,
		ResponseSimMS:   st.ResponseSimMS,
	}
}

type statsE5 struct {
	RemoteRequests  int64
	RemoteTuples    int64
	Generalizations int64
	ResponseSimMS   float64
}
