package advice

import (
	"fmt"
	"strings"
)

// Expr is a path expression element (Section 4.2.2): a query pattern, a
// sequence, or an alternation.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// PatArg is one argument of a query pattern: a variable with an optional
// binding annotation, or a constant placeholder.
type PatArg struct {
	Name    string
	Binding Binding
}

// String renders e.g. "X^" or "Y?".
func (p PatArg) String() string { return p.Name + p.Binding.String() }

// Pattern is a query pattern d_i(T1, ..., Tn): an abstraction of one CAQL
// query the IE will emit, referring to a view specification by name.
type Pattern struct {
	Name string
	Args []PatArg
}

func (*Pattern) isExpr() {}

// String renders the pattern.
func (p *Pattern) String() string {
	if len(p.Args) == 0 {
		return p.Name
	}
	parts := make([]string, len(p.Args))
	for i, a := range p.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", p.Name, strings.Join(parts, ", "))
}

// Bound is a repetition bound: a concrete count, a symbolic cardinality
// (|Y|, resolved only at run time), or infinity.
type Bound struct {
	N   int    // valid when Sym == "" and !Inf
	Sym string // "|Y|" style symbolic bound (variable name)
	Inf bool
}

// Unbounded reports whether the bound is not a concrete small count.
func (b Bound) Unbounded() bool { return b.Inf || b.Sym != "" }

// String renders the bound.
func (b Bound) String() string {
	switch {
	case b.Inf:
		return "*"
	case b.Sym != "":
		return "|" + b.Sym + "|"
	default:
		return fmt.Sprintf("%d", b.N)
	}
}

// Sequence is a precise ordering of member expressions with a repetition
// count <lo, hi>: the whole sequence occurs between lo and hi times.
type Sequence struct {
	Elems []Expr
	Lo    int
	Hi    Bound
}

func (*Sequence) isExpr() {}

// String renders "(e1, e2)<lo,hi>".
func (s *Sequence) String() string {
	parts := make([]string, len(s.Elems))
	for i, e := range s.Elems {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s)<%d,%s>", strings.Join(parts, ", "), s.Lo, s.Hi)
}

// Alternation is an unordered set of alternatives, of which one or more may
// be emitted in unknown order; Select bounds how many alternatives fire per
// occurrence (0 = no bound; 1 = mutually exclusive).
type Alternation struct {
	Elems  []Expr
	Select int
}

func (*Alternation) isExpr() {}

// String renders "[e1, e2]" with an optional "^s" selection term.
func (a *Alternation) String() string {
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = e.String()
	}
	s := fmt.Sprintf("[%s]", strings.Join(parts, ", "))
	if a.Select > 0 {
		s += fmt.Sprintf("^%d", a.Select)
	}
	return s
}

// Names returns every pattern name mentioned in the expression, in
// first-appearance order.
func Names(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *Pattern:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *Sequence:
			for _, c := range v.Elems {
				walk(c)
			}
		case *Alternation:
			for _, c := range v.Elems {
				walk(c)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
