package advice

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/caql"
	"repro/internal/logic"
)

// Parse reads an advice bundle in the textual surface syntax:
//
//	view d1(Y^) :- b1("c1", Y) [r1].
//	view d2(X^, Y?) :- b2(X, Z) & b3(Z, "c2", Y) [r2].
//	path (d1(Y^), [d2(X^, Y?), d3(X^, Y?)]^1<0,|Y|>)<1,1>.
//	base b1/2, b2/2, b3/3.
//
// Head arguments of a view carry optional binding annotations: ^ (producer)
// or ? (consumer). Rule identifiers are listed in square brackets (the
// paper's trailing "(R1, R2)" group, written with brackets to keep the
// grammar unambiguous). Path expressions use the paper's notation: sequences
// "( ... )<lo,hi>" with hi an integer, "|Var|", or "*"; alternations
// "[ ... ]" with an optional "^n" selection term.
func Parse(src string) (*Advice, error) {
	a := &Advice{}
	for _, stmt := range splitStatements(src) {
		switch {
		case strings.HasPrefix(stmt, "view "):
			v, err := parseView(strings.TrimSpace(stmt[5:]))
			if err != nil {
				return nil, err
			}
			a.Views = append(a.Views, v)
		case strings.HasPrefix(stmt, "path "):
			if a.Path != nil {
				return nil, fmt.Errorf("advice: multiple path expressions")
			}
			p, err := ParsePath(strings.TrimSpace(stmt[5:]))
			if err != nil {
				return nil, err
			}
			a.Path = p
		case strings.HasPrefix(stmt, "base "):
			refs, err := parseBaseList(strings.TrimSpace(stmt[5:]))
			if err != nil {
				return nil, err
			}
			a.BaseRels = append(a.BaseRels, refs...)
		default:
			return nil, fmt.Errorf("advice: statement must start with view/path/base: %q", stmt)
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// MustParse is Parse panicking on error, for tests and fixed literals.
func MustParse(src string) *Advice {
	a, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return a
}

// splitStatements splits on statement-terminating periods (ignoring periods
// inside quoted strings) and strips comments (% to end of line).
func splitStatements(src string) []string {
	var lines []string
	for _, ln := range strings.Split(src, "\n") {
		if i := strings.IndexByte(ln, '%'); i >= 0 && !strings.Contains(ln[:i], `"`) {
			ln = ln[:i]
		}
		lines = append(lines, ln)
	}
	src = strings.Join(lines, "\n")
	var parts []string
	var cur strings.Builder
	inStr := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '\\' && i+1 < len(src) {
				i++
				cur.WriteByte(src[i])
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
			cur.WriteByte(c)
		case c == '.':
			if s := strings.TrimSpace(cur.String()); s != "" {
				parts = append(parts, s)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		parts = append(parts, s)
	}
	return parts
}

// parseView parses "d2(X^, Y?) :- body [r1,r2]".
func parseView(src string) (*ViewSpec, error) {
	sep := strings.Index(src, ":-")
	if sep < 0 {
		return nil, fmt.Errorf("advice: view without ':-': %q", src)
	}
	headSrc := strings.TrimSpace(src[:sep])
	rest := strings.TrimSpace(src[sep+2:])

	// Optional trailing rule identifiers "[r1, r2]".
	var rules []string
	if i := strings.LastIndexByte(rest, '['); i >= 0 && strings.HasSuffix(rest, "]") {
		for _, r := range strings.Split(rest[i+1:len(rest)-1], ",") {
			if s := strings.TrimSpace(r); s != "" {
				rules = append(rules, s)
			}
		}
		rest = strings.TrimSpace(rest[:i])
	}

	name, args, bindings, err := parseAnnotatedHead(headSrc)
	if err != nil {
		return nil, err
	}
	clean := fmt.Sprintf("%s(%s) :- %s.", name, strings.Join(args, ", "), rest)
	if len(args) == 0 {
		clean = fmt.Sprintf("%s :- %s.", name, rest)
	}
	q, err := caql.Parse(clean)
	if err != nil {
		return nil, fmt.Errorf("advice: view %s: %w", name, err)
	}
	v := &ViewSpec{Query: q, Bindings: bindings, Rules: rules}
	return v, v.Validate()
}

// parseAnnotatedHead splits "d2(X^, Y?, 3)" into name, raw args, bindings.
func parseAnnotatedHead(src string) (string, []string, []Binding, error) {
	open := strings.IndexByte(src, '(')
	if open < 0 {
		return strings.TrimSpace(src), nil, nil, nil
	}
	if !strings.HasSuffix(src, ")") {
		return "", nil, nil, fmt.Errorf("advice: malformed view head %q", src)
	}
	name := strings.TrimSpace(src[:open])
	inner := src[open+1 : len(src)-1]
	var args []string
	var bindings []Binding
	depth := 0
	inStr := false
	start := 0
	flush := func(end int) error {
		raw := strings.TrimSpace(inner[start:end])
		if raw == "" {
			return fmt.Errorf("advice: empty argument in view head %q", src)
		}
		b := BindNone
		switch raw[len(raw)-1] {
		case '^':
			b = BindProducer
			raw = strings.TrimSpace(raw[:len(raw)-1])
		case '?':
			b = BindConsumer
			raw = strings.TrimSpace(raw[:len(raw)-1])
		}
		args = append(args, raw)
		bindings = append(bindings, b)
		return nil
	}
	for i := 0; i < len(inner); i++ {
		c := inner[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			if err := flush(i); err != nil {
				return "", nil, nil, err
			}
			start = i + 1
		}
	}
	if strings.TrimSpace(inner) != "" {
		if err := flush(len(inner)); err != nil {
			return "", nil, nil, err
		}
	}
	return name, args, bindings, nil
}

func parseBaseList(src string) ([]logic.PredRef, error) {
	var out []logic.PredRef
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		slash := strings.LastIndexByte(part, '/')
		if slash < 0 {
			return nil, fmt.Errorf("advice: base entry %q must be name/arity", part)
		}
		arity, err := strconv.Atoi(part[slash+1:])
		if err != nil || arity < 0 {
			return nil, fmt.Errorf("advice: bad arity in %q", part)
		}
		out = append(out, logic.PredRef{Name: strings.TrimSpace(part[:slash]), Arity: arity})
	}
	return out, nil
}

// ParsePath parses a path expression.
func ParsePath(src string) (Expr, error) {
	p := &pathParser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("advice: trailing input in path expression at %q", p.src[p.pos:])
	}
	return e, nil
}

type pathParser struct {
	src string
	pos int
}

func (p *pathParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *pathParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *pathParser) expect(c byte) error {
	if p.peek() != c {
		return fmt.Errorf("advice: expected %q at %q", string(c), p.src[p.pos:])
	}
	p.pos++
	return nil
}

func (p *pathParser) parseExpr() (Expr, error) {
	switch p.peek() {
	case '(':
		return p.parseSequence()
	case '[':
		return p.parseAlternation()
	default:
		return p.parsePattern()
	}
}

func (p *pathParser) parseList(close byte) ([]Expr, error) {
	var elems []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(close); err != nil {
		return nil, err
	}
	return elems, nil
}

func (p *pathParser) parseSequence() (Expr, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	elems, err := p.parseList(')')
	if err != nil {
		return nil, err
	}
	seq := &Sequence{Elems: elems, Lo: 1, Hi: Bound{N: 1}}
	if p.peek() == '<' {
		p.pos++
		lo, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(','); err != nil {
			return nil, err
		}
		hi, err := p.parseBound()
		if err != nil {
			return nil, err
		}
		if err := p.expect('>'); err != nil {
			return nil, err
		}
		seq.Lo, seq.Hi = lo, hi
	}
	return seq, nil
}

func (p *pathParser) parseAlternation() (Expr, error) {
	if err := p.expect('['); err != nil {
		return nil, err
	}
	elems, err := p.parseList(']')
	if err != nil {
		return nil, err
	}
	alt := &Alternation{Elems: elems}
	if p.peek() == '^' {
		p.pos++
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		alt.Select = n
	}
	return alt, nil
}

func (p *pathParser) parsePattern() (Expr, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("advice: expected pattern name at %q", p.src[start:])
	}
	pat := &Pattern{Name: p.src[start:p.pos]}
	if p.peek() != '(' {
		return pat, nil
	}
	p.pos++
	for {
		p.skipSpace()
		as := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == as {
			return nil, fmt.Errorf("advice: expected pattern argument at %q", p.src[as:])
		}
		arg := PatArg{Name: p.src[as:p.pos]}
		switch p.peek() {
		case '^':
			arg.Binding = BindProducer
			p.pos++
		case '?':
			arg.Binding = BindConsumer
			p.pos++
		}
		pat.Args = append(pat.Args, arg)
		if p.peek() == ',' {
			p.pos++
			continue
		}
		break
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pat, nil
}

func (p *pathParser) parseInt() (int, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return 0, fmt.Errorf("advice: expected integer at %q", p.src[start:])
	}
	return strconv.Atoi(p.src[start:p.pos])
}

func (p *pathParser) parseBound() (Bound, error) {
	switch p.peek() {
	case '*':
		p.pos++
		return Bound{Inf: true}, nil
	case '|':
		p.pos++
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Bound{}, fmt.Errorf("advice: expected variable in |...| bound")
		}
		sym := p.src[start:p.pos]
		if err := p.expect('|'); err != nil {
			return Bound{}, err
		}
		return Bound{Sym: sym}, nil
	default:
		n, err := p.parseInt()
		if err != nil {
			return Bound{}, err
		}
		return Bound{N: n}, nil
	}
}

func isNameChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
