package advice

import (
	"reflect"
	"strings"
	"testing"
)

// paperExample1 is the advice from Section 4.2.2, Example 1.
const paperExample1 = `
	% view specifications for the AI query k1(X,Y)?
	view d1(Y^) :- b1("c1", Y) [r1].
	view d2(X^, Y?) :- b2(X, Z) & b3(Z, "c2", Y) [r2].
	view d3(X^, Y?) :- b3(X, "c3", Z) & b1(Z, Y) [r3].
	path (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>.
	base b1/2, b2/2, b3/3.
`

func TestParseExample1(t *testing.T) {
	a, err := Parse(paperExample1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Views) != 3 || a.Path == nil || len(a.BaseRels) != 3 {
		t.Fatalf("bundle shape wrong: %+v", a)
	}
	d2 := a.ViewByName("d2")
	if d2 == nil {
		t.Fatal("d2 missing")
	}
	if d2.Bindings[0] != BindProducer || d2.Bindings[1] != BindConsumer {
		t.Fatalf("d2 bindings = %v", d2.Bindings)
	}
	if got := d2.ConsumerCols(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("consumer cols = %v", got)
	}
	if d2.StrictProducer() {
		t.Error("d2 has a consumer")
	}
	d1 := a.ViewByName("d1")
	if !d1.StrictProducer() {
		t.Error("d1 is a strict producer")
	}
	if len(d2.Query.Rels) != 2 {
		t.Fatalf("d2 body atoms = %d", len(d2.Query.Rels))
	}
	if !reflect.DeepEqual(d2.Rules, []string{"r2"}) {
		t.Fatalf("d2 rules = %v", d2.Rules)
	}
	if a.ViewByName("nosuch") != nil {
		t.Error("unknown view should be nil")
	}
}

func TestAdviceRoundTrip(t *testing.T) {
	a := MustParse(paperExample1)
	re, err := Parse(a.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", a.String(), err)
	}
	if len(re.Views) != 3 || re.Path == nil {
		t.Fatalf("round trip lost content: %v", re)
	}
	if re.Views[1].String() != a.Views[1].String() {
		t.Errorf("view round trip: %q vs %q", a.Views[1].String(), re.Views[1].String())
	}
	if re.Path.String() != a.Path.String() {
		t.Errorf("path round trip: %q vs %q", a.Path.String(), re.Path.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"view d1(X^).",        // no body
		"view d1(X^ :- b(X).", // malformed head
		"nonsense things.",    // unknown statement
		"path (d1(Y^).",       // unbalanced
		"path d1 <1,2>.",      // repetition without group
		"base b1.",            // missing arity
		"base b1/x.",          // bad arity
		"view d(X^) :- b(X). view d(Y^) :- b(Y).", // duplicate view
		"path (d1)<1,1>. path (d2)<1,1>.",         // two paths
		"view d(X^, W?) :- b(X).",                 // unbound head var
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// TestTrackerExample1 replays the valid CAQL sequences of Example 1.
func TestTrackerExample1(t *testing.T) {
	a := MustParse(paperExample1)
	// d1 then (d2, d3) repeated.
	for _, seq := range [][]string{
		{"d1"},
		{"d1", "d2", "d3"},
		{"d1", "d2", "d3", "d2", "d3"},
	} {
		tr := NewTracker(a.Path)
		for _, q := range seq {
			if !tr.Observe(q) {
				t.Fatalf("sequence %v: unexpected rejection at %s", seq, q)
			}
		}
	}
	// Invalid: d2 before d1; repeated d1 (repetition term <1,1>).
	tr := NewTracker(a.Path)
	if tr.Observe("d2") {
		t.Error("d2 before d1 should be rejected")
	}
	tr = NewTracker(a.Path)
	tr.Observe("d1")
	if tr.Observe("d1") {
		t.Error("second d1 should be rejected (repetition <1,1>)")
	}
	if !tr.Lost() {
		t.Error("tracker should be lost after rejection")
	}
}

// TestTrackerPaperTrackingExcerpt replays the Section 4.2.2 path expression
// tracking example:
//
//	(...(d1(X?,Y^), [(d2(Z^,Y?), d3(Z?)), (d4(U^,Y?), d5(U?))]^1)<0,|X|> ...)<0,1>
func TestTrackerPaperTrackingExcerpt(t *testing.T) {
	pe, err := ParsePath("((d1(X?, Y^), [(d2(Z^, Y?), d3(Z?)), (d4(U^, Y?), d5(U?))]^1)<0,|X|>)<0,1>")
	if err != nil {
		t.Fatal(err)
	}
	valid := [][]string{
		{"d1", "d2", "d3"},
		{"d1", "d4", "d1", "d2", "d3", "d1"},
		{"d1", "d2", "d3", "d1", "d4", "d5"},
	}
	for _, seq := range valid {
		tr := NewTracker(pe)
		for i, q := range seq {
			if !tr.Observe(q) {
				t.Fatalf("valid sequence %v rejected at position %d (%s)", seq, i, q)
			}
		}
	}
	// After observing d1 then d2, the alternation is committed to its first
	// branch: the next query can be d3 (continue branch) or d1 (new
	// repetition), but not d4/d5 (selection term 1).
	tr := NewTracker(pe)
	tr.Observe("d1")
	tr.Observe("d2")
	next := tr.PredictNext()
	has := func(ss []string, w string) bool {
		for _, s := range ss {
			if s == w {
				return true
			}
		}
		return false
	}
	if !has(next, "d3") || !has(next, "d1") {
		t.Errorf("PredictNext after d1,d2 = %v, want d3 and d1", next)
	}
	if has(next, "d4") || has(next, "d5") {
		t.Errorf("PredictNext after d1,d2 = %v, should not include d4/d5 mid-branch", next)
	}
	// "Thus, d1 will be required for one of the next two queries": after
	// d1,d2, within 2 steps d1 is predicted.
	within := tr.PredictWithin(2)
	if d, ok := within["d1"]; !ok || d > 2 {
		t.Errorf("d1 should be predicted within 2 steps, got %v", within)
	}
}

func TestTrackerAlternationSelection(t *testing.T) {
	// Without a selection term, multiple alternatives may fire.
	pe, err := ParsePath("(d1, [d2, d3])<1,1>")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(pe)
	for _, q := range []string{"d1", "d2", "d3", "d2"} {
		if !tr.Observe(q) {
			t.Fatalf("unbounded alternation rejected %s", q)
		}
	}
	// With ^1 only one alternative per occurrence.
	pe1, err := ParsePath("(d1, [d2, d3]^1)<1,1>")
	if err != nil {
		t.Fatal(err)
	}
	tr = NewTracker(pe1)
	tr.Observe("d1")
	tr.Observe("d2")
	if tr.Observe("d3") {
		t.Error("selection term 1 should forbid a second alternative")
	}
}

func TestPredictWithinDistances(t *testing.T) {
	pe, err := ParsePath("(d1, d2, d3)<1,1>")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(pe)
	within := tr.PredictWithin(3)
	if within["d1"] != 1 || within["d2"] != 2 || within["d3"] != 3 {
		t.Fatalf("distances wrong: %v", within)
	}
	tr.Observe("d1")
	within = tr.PredictWithin(3)
	if _, ok := within["d1"]; ok {
		t.Errorf("d1 must not be predicted again: %v", within)
	}
	if within["d2"] != 1 {
		t.Errorf("d2 distance = %d, want 1", within["d2"])
	}
	// Lost tracker predicts nothing.
	tr.Observe("d1")
	if got := tr.PredictWithin(3); got != nil {
		t.Errorf("lost tracker should predict nothing, got %v", got)
	}
}

func TestSequenceFollowers(t *testing.T) {
	a := MustParse(paperExample1)
	// After d2, its sequence sibling d3 follows.
	got := SequenceFollowers(a.Path, "d2")
	if !reflect.DeepEqual(got, []string{"d3"}) {
		t.Fatalf("followers of d2 = %v, want [d3]", got)
	}
	// After d1, the whole inner group follows.
	got = SequenceFollowers(a.Path, "d1")
	if len(got) != 2 {
		t.Fatalf("followers of d1 = %v", got)
	}
	if got := SequenceFollowers(a.Path, "d3"); len(got) != 0 {
		t.Fatalf("followers of d3 = %v, want none", got)
	}
	if got := SequenceFollowers(nil, "d1"); got != nil {
		t.Fatalf("nil path followers = %v", got)
	}
}

func TestNames(t *testing.T) {
	a := MustParse(paperExample1)
	if got := Names(a.Path); !reflect.DeepEqual(got, []string{"d1", "d2", "d3"}) {
		t.Fatalf("names = %v", got)
	}
	if Names(nil) != nil {
		t.Error("nil expr should have no names")
	}
}

func TestNilAndEmptyTracker(t *testing.T) {
	tr := NewTracker(nil)
	if tr.Observe("d1") {
		t.Error("nil-path tracker accepts nothing")
	}
	if got := NewTracker(nil).PredictNext(); len(got) != 0 {
		t.Errorf("nil-path tracker predicts %v", got)
	}
}

func TestBoundString(t *testing.T) {
	pe, err := ParsePath("((d1)<0,*>, (d2)<2,5>, (d3)<0,|Y|>)<1,1>")
	if err != nil {
		t.Fatal(err)
	}
	s := pe.String()
	for _, want := range []string{"<0,*>", "<2,5>", "<0,|Y|>"} {
		if !strings.Contains(s, want) {
			t.Errorf("path string %q missing %q", s, want)
		}
	}
}
