package advice

import (
	"math/rand"
	"strings"
	"testing"
)

func BenchmarkParseAdvice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(paperExample1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackerObservePredict(b *testing.B) {
	a := MustParse(paperExample1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := NewTracker(a.Path)
		tr.Observe("d1")
		tr.Observe("d2")
		tr.PredictWithin(8)
		tr.Observe("d3")
		tr.PredictNext()
	}
}

// Advice parser robustness on garbage.
func TestAdviceParserNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	alphabet := `view path base d1XY09_(),.:-<>=!&[]^?|* "` + "\n"
	for i := 0; i < 3000; i++ {
		var sb strings.Builder
		for j := 0; j < rng.Intn(60); j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
			ParsePath(src)
		}()
	}
}
