// Package advice implements BrAID's advice language (Section 4.2 of the
// paper): the problem-specific information the inference engine transmits to
// the Cache Management System at the start of a session. Advice has two
// forms — view specifications with producer/consumer binding annotations
// (Section 4.2.1) and path expressions (Section 4.2.2) — plus the degenerate
// simplest form, a bare list of relevant base relations.
//
// Advice is never mandatory: the CMS functions without it (Section 3), but
// uses it for prefetching, result caching, replacement, attribute indexing,
// cache-vs-DBMS execution split, lazy-vs-eager choice, and query
// generalization.
package advice

import (
	"fmt"
	"strings"

	"repro/internal/caql"
	"repro/internal/logic"
)

// Binding is a head-argument binding annotation on a view specification.
type Binding uint8

// Binding annotations: a producer argument ("^") will be a free variable in
// the corresponding CAQL queries (the query produces bindings for it); a
// consumer argument ("?") will be a constant (the IE supplies a binding).
// Consumer annotations advise the CMS to index the attribute; producer
// annotations advise against it (Section 4.2.1).
const (
	BindNone Binding = iota
	BindProducer
	BindConsumer
)

// String returns the surface annotation.
func (b Binding) String() string {
	switch b {
	case BindProducer:
		return "^"
	case BindConsumer:
		return "?"
	default:
		return ""
	}
}

// ViewSpec is a view specification: a named CAQL definition with binding
// annotations and the rule identifiers it derives from (the latter "for
// human consumption", per the paper).
type ViewSpec struct {
	Query    *caql.Query
	Bindings []Binding // one per head argument
	Rules    []string
}

// Name returns the d_i identifier.
func (v *ViewSpec) Name() string { return v.Query.Name() }

// ConsumerCols returns the head positions annotated as consumers — the
// prime candidates for indexing.
func (v *ViewSpec) ConsumerCols() []int {
	var out []int
	for i, b := range v.Bindings {
		if b == BindConsumer {
			out = append(out, i)
		}
	}
	return out
}

// StrictProducer reports whether no argument is a consumer: such relations
// are "well advised to produce ... lazily and without any indexing".
func (v *ViewSpec) StrictProducer() bool {
	for _, b := range v.Bindings {
		if b == BindConsumer {
			return false
		}
	}
	return true
}

// Validate checks annotation arity.
func (v *ViewSpec) Validate() error {
	if v.Query == nil {
		return fmt.Errorf("advice: view spec without query")
	}
	if err := v.Query.Validate(); err != nil {
		return err
	}
	if len(v.Bindings) != len(v.Query.Head.Args) {
		return fmt.Errorf("advice: view %s has %d bindings for %d head arguments",
			v.Name(), len(v.Bindings), len(v.Query.Head.Args))
	}
	return nil
}

// String renders the spec: "d1(Y^) :- b1("c1", Y) (R1)."
func (v *ViewSpec) String() string {
	var b strings.Builder
	b.WriteString(v.Query.Name())
	b.WriteByte('(')
	for i, t := range v.Query.Head.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
		if i < len(v.Bindings) {
			b.WriteString(v.Bindings[i].String())
		}
	}
	b.WriteString(") :- ")
	all := v.Query.Body()
	for i, a := range all {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(a.String())
	}
	if len(v.Rules) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(v.Rules, ","))
	}
	b.WriteByte('.')
	return b.String()
}

// Advice is the bundle transmitted at the start of a session.
type Advice struct {
	// Views are the view specifications, indexed by name via ViewByName.
	Views []*ViewSpec
	// Path is the session's path expression; nil when not provided.
	Path Expr
	// BaseRels is the simplest form of advice: the base relations relevant
	// to the current problem.
	BaseRels []logic.PredRef
}

// ViewByName finds a view specification.
func (a *Advice) ViewByName(name string) *ViewSpec {
	if a == nil {
		return nil
	}
	for _, v := range a.Views {
		if v.Name() == name {
			return v
		}
	}
	return nil
}

// Validate checks all components.
func (a *Advice) Validate() error {
	seen := make(map[string]bool)
	for _, v := range a.Views {
		if err := v.Validate(); err != nil {
			return err
		}
		if seen[v.Name()] {
			return fmt.Errorf("advice: duplicate view %s", v.Name())
		}
		seen[v.Name()] = true
	}
	return nil
}

// String renders the whole bundle.
func (a *Advice) String() string {
	var b strings.Builder
	for _, v := range a.Views {
		b.WriteString("view ")
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	if a.Path != nil {
		fmt.Fprintf(&b, "path %s.\n", a.Path)
	}
	if len(a.BaseRels) > 0 {
		refs := make([]string, len(a.BaseRels))
		for i, r := range a.BaseRels {
			refs[i] = r.String()
		}
		fmt.Fprintf(&b, "base %s.\n", strings.Join(refs, ", "))
	}
	return b.String()
}
