package advice

import (
	"sort"
	"sync"
)

// Tracker performs path expression tracking (Section 4.2.2): it associates
// the CAQL queries the IE actually submits with positions in the session's
// path expression, so the CMS can predict which view specifications will be
// needed soon (prefetching) and which cached elements are poor replacement
// victims.
//
// The path expression compiles to a small nondeterministic automaton whose
// transitions are labeled with view names. Symbolic and large repetition
// bounds are approximated by unbounded loops — the tracker is a predictor,
// not a validator, so over-approximation merely widens predictions.
//
// Trackers are safe for concurrent use: the owning session observes queries
// while other sessions' eviction sweeps consult its predictions through the
// cache manager's predictor registry. The automaton itself (edges/eps) is
// immutable after construction; mu guards the tracking state.
type Tracker struct {
	edges map[int][]tEdge
	eps   map[int][]int
	start int

	mu      sync.Mutex
	current map[int]bool
	lost    bool
}

type tEdge struct {
	label string
	to    int
}

// NewTracker compiles the expression; a nil expression yields a tracker that
// predicts nothing.
func NewTracker(e Expr) *Tracker {
	t := &Tracker{edges: map[int][]tEdge{}, eps: map[int][]int{}}
	next := 0
	newState := func() int { next++; return next - 1 }
	t.start = newState()
	var compile func(e Expr, from int) int
	compile = func(e Expr, from int) int {
		switch v := e.(type) {
		case *Pattern:
			to := newState()
			t.edges[from] = append(t.edges[from], tEdge{label: v.Name, to: to})
			return to
		case *Sequence:
			accept := newState()
			cur := from
			for i, el := range v.Elems {
				cur = compile(el, cur)
				// Sequences are prefix-closed: the paper's own valid-sequence
				// list for the tracking example includes "d1, d4, d1, ..." —
				// a branch abandoned after its first element (the IE failed
				// partway). Every intermediate point may therefore exit.
				if i < len(v.Elems)-1 {
					t.eps[cur] = append(t.eps[cur], accept)
				}
			}
			t.eps[cur] = append(t.eps[cur], accept)
			if v.Lo == 0 {
				t.eps[from] = append(t.eps[from], accept)
			}
			if v.Hi.Unbounded() || v.Hi.N > 1 {
				t.eps[cur] = append(t.eps[cur], from) // repeat
			}
			return accept
		case *Alternation:
			accept := newState()
			for _, el := range v.Elems {
				end := compile(el, from)
				t.eps[end] = append(t.eps[end], accept)
				if v.Select != 1 {
					// More than one alternative may fire per occurrence.
					t.eps[end] = append(t.eps[end], from)
				}
			}
			// Zero alternatives may fire ("some members may never appear").
			t.eps[from] = append(t.eps[from], accept)
			return accept
		default:
			return from
		}
	}
	if e != nil {
		compile(e, t.start)
	}
	t.current = t.closure(map[int]bool{t.start: true})
	return t
}

func (t *Tracker) closure(states map[int]bool) map[int]bool {
	out := make(map[int]bool, len(states))
	var stack []int
	for s := range states {
		out[s] = true
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range t.eps[s] {
			if !out[n] {
				out[n] = true
				stack = append(stack, n)
			}
		}
	}
	return out
}

// Lost reports whether an observed query fell outside the path expression;
// once lost, the tracker stops predicting.
func (t *Tracker) Lost() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lost
}

// Observe advances the tracker on a query against view name. It returns
// false (and enters the lost state) when the query does not fit the path
// expression at the current position.
func (t *Tracker) Observe(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.lost {
		return false
	}
	next := make(map[int]bool)
	for s := range t.current {
		for _, e := range t.edges[s] {
			if e.label == name {
				next[e.to] = true
			}
		}
	}
	if len(next) == 0 {
		t.lost = true
		return false
	}
	t.current = t.closure(next)
	return true
}

// PredictNext returns the view names that could be the very next query,
// sorted.
func (t *Tracker) PredictNext() []string {
	return t.keysWithin(1)
}

// PredictWithin returns, for each view name reachable within k observations,
// the minimum number of observations before a query against it can occur
// (1 = could be next). Names not reachable within k are absent.
func (t *Tracker) PredictWithin(k int) map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.predictWithinLocked(k)
}

func (t *Tracker) predictWithinLocked(k int) map[string]int {
	if t.lost || k <= 0 {
		return nil
	}
	dist := make(map[string]int)
	frontier := t.current
	seen := make(map[int]bool)
	for s := range frontier {
		seen[s] = true
	}
	for step := 1; step <= k; step++ {
		next := make(map[int]bool)
		for s := range frontier {
			for _, e := range t.edges[s] {
				if _, ok := dist[e.label]; !ok {
					dist[e.label] = step
				}
				next[e.to] = true
			}
		}
		next = t.closure(next)
		// Stop early when no new states appear.
		fresh := false
		for s := range next {
			if !seen[s] {
				seen[s] = true
				fresh = true
			}
		}
		frontier = next
		if !fresh && step > 1 {
			break
		}
	}
	return dist
}

func (t *Tracker) keysWithin(k int) []string {
	t.mu.Lock()
	m := t.predictWithinLocked(k)
	t.mu.Unlock()
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SequenceFollowers returns, for a just-observed view name, the view names
// that belong to the same innermost sequence and follow it — the paper's
// prefetch rule: "the sequence grouping ... indicates that all items in that
// group are likely to be evaluated when the first item is evaluated"
// (Section 5.3.1). This is computed structurally from the expression rather
// than from tracker state, so it is usable even when the CMS chooses not to
// track.
func SequenceFollowers(e Expr, name string) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] && n != name {
			seen[n] = true
			out = append(out, n)
		}
	}
	var collect func(Expr)
	collect = func(x Expr) {
		switch v := x.(type) {
		case *Pattern:
			add(v.Name)
		case *Sequence:
			for _, c := range v.Elems {
				collect(c)
			}
		case *Alternation:
			for _, c := range v.Elems {
				collect(c)
			}
		}
	}
	contains := func(x Expr) bool {
		for _, n := range Names(x) {
			if n == name {
				return true
			}
		}
		return false
	}
	var walk func(Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *Sequence:
			// Find the direct child containing name; followers are the
			// later siblings. Recurse into that child for the innermost
			// sequence semantics first.
			for i, c := range v.Elems {
				if contains(c) {
					walk(c)
					for _, later := range v.Elems[i+1:] {
						collect(later)
					}
					return
				}
			}
		case *Alternation:
			for _, c := range v.Elems {
				if contains(c) {
					walk(c)
					return
				}
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
