package braid

// The benchmark harness: one testing.B benchmark per experiment of the
// evaluation suite (DESIGN.md Section 5, EXPERIMENTS.md for the recorded
// tables). Each benchmark runs the experiment's workload once per iteration;
// the experiment *tables* (who wins, by what factor) are printed by
// cmd/braid-bench, while these benchmarks track the real CPU cost of each
// configuration and report the headline simulated metrics via ReportMetric.

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/caql"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/ie"
	"repro/internal/relation"
	"repro/internal/remotedb"
	"repro/internal/subsume"
	"repro/internal/workload"
)

// BenchmarkE1_ICRange: inference strategies along the interpreted-compiled
// range (loose data layer isolates the strategy dimension; the braid variant
// shows the bridge's effect on the interpreted extreme).
func BenchmarkE1_ICRange(b *testing.B) {
	cases := []struct {
		name  string
		strat ie.Strategy
		braid bool
		all   bool
	}{
		{"interpreted/loose/all", ie.StrategyInterpreted, false, true},
		{"interpreted/loose/first", ie.StrategyInterpreted, false, false},
		{"conjunction/loose/all", ie.StrategyConjunction, false, true},
		{"compiled/loose/all", ie.StrategyCompiled, false, true},
		{"compiled/loose/first", ie.StrategyCompiled, false, false},
		{"interpreted/braid/all", ie.StrategyInterpreted, true, true},
		{"interpreted/braid/first", ie.StrategyInterpreted, true, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var lastSim float64
			var lastRemote int64
			for i := 0; i < b.N; i++ {
				st, _ := experiments.RunE1(c.strat, c.braid, c.all)
				lastSim, lastRemote = st.ResponseSimMS, st.RemoteRequests
			}
			b.ReportMetric(lastSim, "simMS")
			b.ReportMetric(float64(lastRemote), "remoteReqs")
		})
	}
}

// BenchmarkE2_CachingStrategies: reuse regimes on the overlapping CAQL mix.
func BenchmarkE2_CachingStrategies(b *testing.B) {
	for _, comp := range []core.Comparator{core.ComparatorLoose, core.ComparatorExact, core.ComparatorSingleRel, core.ComparatorBrAID} {
		b.Run(string(comp), func(b *testing.B) {
			var sim float64
			var remote int64
			for i := 0; i < b.N; i++ {
				st := experiments.RunE2(comp)
				sim, remote = st.ResponseSimMS, st.RemoteRequests
			}
			b.ReportMetric(sim, "simMS")
			b.ReportMetric(float64(remote), "remoteReqs")
		})
	}
}

// BenchmarkE3_LazyVsEager: generator vs extension answers under varying
// demand.
func BenchmarkE3_LazyVsEager(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		for _, k := range []int{1, 0} {
			name := fmt.Sprintf("lazy=%v/demand=%d", lazy, k)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					experiments.RunE3(lazy, k)
				}
			})
		}
	}
}

// BenchmarkE4_Prefetching: path-expression prefetch on/off at 50ms latency.
func BenchmarkE4_Prefetching(b *testing.B) {
	for _, pf := range []bool{false, true} {
		b.Run(fmt.Sprintf("prefetch=%v", pf), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				st := experiments.RunE4(pf, 50)
				sim = st.ResponseSimMS
			}
			b.ReportMetric(sim, "simMS")
		})
	}
}

// BenchmarkE5_Generalization: repeated consumer-bound instances with and
// without query generalization.
func BenchmarkE5_Generalization(b *testing.B) {
	for _, gen := range []bool{false, true} {
		b.Run(fmt.Sprintf("generalize=%v", gen), func(b *testing.B) {
			var remote int64
			for i := 0; i < b.N; i++ {
				st := experiments.RunE5(gen, 16)
				remote = st.RemoteRequests
			}
			b.ReportMetric(float64(remote), "remoteReqs")
		})
	}
}

// BenchmarkE6_AttributeIndexing: consumer-annotation-driven indexing on the
// cached extension.
func BenchmarkE6_AttributeIndexing(b *testing.B) {
	for _, ix := range []bool{false, true} {
		b.Run(fmt.Sprintf("indexing=%v", ix), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunE6(ix, 4000)
			}
		})
	}
}

// BenchmarkE7_Replacement: plain LRU vs advice-modified replacement under
// cache pressure.
func BenchmarkE7_Replacement(b *testing.B) {
	for _, prot := range []bool{false, true} {
		b.Run(fmt.Sprintf("advice=%v", prot), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunE7(prot)
			}
		})
	}
}

// BenchmarkE8_ParallelSubqueries: sequential vs parallel cache/remote plan
// execution.
func BenchmarkE8_ParallelSubqueries(b *testing.B) {
	for _, par := range []bool{false, true} {
		b.Run(fmt.Sprintf("parallel=%v", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.RunE8(par, 100)
			}
		})
	}
}

// BenchmarkE9_SubsumptionOverhead: one full subsumption pass (every cached
// element checked against the probe query) per iteration.
func BenchmarkE9_SubsumptionOverhead(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("elements=%d", n), func(b *testing.B) {
			elements := experiments.E9Elements(n)
			q := experiments.E9Query()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, e := range elements {
					subsume.DeriveFull(e, q)
				}
			}
		})
	}
}

// BenchmarkE10_FeatureAblation: the full configuration vs everything off on
// the mixed ablation session.
func BenchmarkE10_FeatureAblation(b *testing.B) {
	for _, full := range []bool{true, false} {
		name := "full"
		if !full {
			name = "alloff"
		}
		b.Run(name, func(b *testing.B) {
			f := cache.Features{}
			if full {
				f = cache.AllFeatures()
			}
			var sim float64
			for i := 0; i < b.N; i++ {
				st := experiments.RunE10(f)
				sim = st.ResponseSimMS
			}
			b.ReportMetric(sim, "simMS")
		})
	}
}

// BenchmarkE12_ConcurrentSessions: K sessions replaying the E10 workload
// against one shared CMS; reports aggregate wall-clock QPS and tail latency.
func BenchmarkE12_ConcurrentSessions(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("sessions=%d", k), func(b *testing.B) {
			var r experiments.E12Result
			for i := 0; i < b.N; i++ {
				r = experiments.RunE12(k)
			}
			b.ReportMetric(r.QPS, "qps")
			b.ReportMetric(float64(r.P50.Microseconds()), "p50us")
			b.ReportMetric(float64(r.P99.Microseconds()), "p99us")
		})
	}
}

// BenchmarkDeriveApply: the derive-and-apply fast path serving a query from
// a cached extension.
func BenchmarkDeriveApply(b *testing.B) {
	w := workload.Chain(41, 2000, 40)
	ext := w.Tables[2] // b3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.E9DeriveApply(ext)
	}
}

// BenchmarkEndToEndAsk: a whole Ask (compile advice, open session, SLD
// search, answer) on the public API.
func BenchmarkEndToEndAsk(b *testing.B) {
	w := workload.Kinship(43, 80)
	for _, strat := range []ie.Strategy{ie.StrategyInterpreted, ie.StrategyCompiled} {
		b.Run(strat.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.IE.Strategy = strat
			client := remotedb.NewInProcClient(w.Engine(), remotedb.DefaultCosts())
			sys, err := core.NewSystem(w.KB, client, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := sys.AskText("grandparent(X, Z)?")
				if err != nil {
					b.Fatal(err)
				}
				sol.All()
			}
		})
	}
}

// BenchmarkCAQLEval: the reference conjunctive evaluator on a 3-way join.
func BenchmarkCAQLEval(b *testing.B) {
	w := workload.Chain(47, 2000, 40)
	src := w.Source()
	q := caql.MustParse(`q(X, W) :- b2(X, Z) & b3(Z, "c2", W) & W < 30`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caql.Eval(q, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHashJoin: the storage-layer join on 10k x 10k inputs.
func BenchmarkHashJoin(b *testing.B) {
	mk := func(n int, name string) *relation.Relation {
		r := relation.New(name, relation.NewSchema(
			relation.Attr{Name: "a", Kind: relation.KindInt},
			relation.Attr{Name: "b", Kind: relation.KindInt}))
		for i := 0; i < n; i++ {
			r.MustAppend(relation.Tuple{relation.Int(int64(i % 512)), relation.Int(int64(i))})
		}
		return r
	}
	l, r := mk(10000, "l"), mk(10000, "r")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := relation.HashJoin(l.Iter(), r.Iter(), []relation.JoinCond{{Left: 0, Right: 0}})
		relation.Count(it)
	}
}
