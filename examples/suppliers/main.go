// Command suppliers runs an expert-system-style workload over the classic
// suppliers/parts/shipments schema and compares the four data-layer
// configurations of the paper's Figure 1 taxonomy on the same query mix:
// loose coupling, exact-match result caching, single-relation caching, and
// BrAID's subsumption-based Cache Management System.
package main

import (
	"fmt"
	"log"

	braid "repro"
)

const kbSrc = `
	:- base(supplier/3).
	:- base(part/3).
	:- base(shipment/3).
	:- fd(supplier/3, [1] -> [2,3]).
	:- fd(part/3, [1] -> [2,3]).
	supplies(S, P) :- shipment(S, P, Q), Q > 0.
	red_part(P) :- part(P, "red", W).
	supplies_red(S) :- supplies(S, P), red_part(P).
	heavy_shipment(S, P) :- shipment(S, P, Q), part(P, C, W), W > 70.
	big_order(S, P) :- shipment(S, P, Q), Q >= 400.
	colocated(S1, S2) :- supplier(S1, N1, C), supplier(S2, N2, C), S1 != S2.
`

func loadDB() *braid.DB {
	db := braid.NewDB()
	db.MustExec(`CREATE TABLE supplier (sid INT, name TEXT, city TEXT)`)
	db.MustExec(`INSERT INTO supplier VALUES
		(1,'smith','london'), (2,'jones','paris'), (3,'blake','paris'),
		(4,'clark','london'), (5,'adams','athens')`)
	db.MustExec(`CREATE TABLE part (pid INT, color TEXT, weight FLOAT)`)
	db.MustExec(`INSERT INTO part VALUES
		(1,'red',12.0), (2,'green',17.0), (3,'blue',17.0),
		(4,'red',14.0), (5,'blue',12.0), (6,'red',90.0)`)
	db.MustExec(`CREATE TABLE shipment (sid INT, pid INT, qty INT)`)
	db.MustExec(`INSERT INTO shipment VALUES
		(1,1,300), (1,2,200), (1,3,400), (1,4,200), (1,5,100), (1,6,100),
		(2,1,300), (2,2,400),
		(3,2,200),
		(4,2,200), (4,4,300), (4,5,400)`)
	return db
}

var queryMix = []string{
	"supplies_red(S)?",
	"heavy_shipment(S, P)?",
	"supplies_red(S)?", // repeat: caching pays off
	"big_order(S, P)?",
	"colocated(S1, S2)?",
	"supplies_red(S)?",
	"heavy_shipment(S, P)?",
}

func main() {
	kb, err := braid.ParseKB(kbSrc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %8s %8s %8s %8s %12s\n",
		"comparator", "queries", "remote", "tuples", "hits", "simResp(ms)")
	for _, comp := range []string{"loose", "exact", "singlerel", "braid"} {
		sys, err := braid.New(kb, loadDB(),
			braid.WithComparator(comp),
			braid.WithStrategy("conjunction"))
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, q := range queryMix {
			ans, err := sys.Ask(q)
			if err != nil {
				log.Fatalf("%s: %s: %v", comp, q, err)
			}
			total += ans.Count()
			if ans.Err() != nil {
				log.Fatalf("%s: %s: %v", comp, q, ans.Err())
			}
		}
		st := sys.Stats()
		fmt.Printf("%-12s %8d %8d %8d %8d %12.1f\n",
			comp, st.Queries, st.RemoteRequests, st.RemoteTuples,
			st.CacheHits+st.PartialHits, st.ResponseSimMS)
		_ = total
	}
	fmt.Println("\n(loose re-fetches everything; exact reuses only repeats;")
	fmt.Println(" singlerel ships whole tables once; braid reuses overlapping views)")
}
