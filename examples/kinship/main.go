// Command kinship demonstrates the interpreted-compiled range (Section 2 of
// the paper) on a recursive family knowledge base: the same AI queries run
// under the interpreted, conjunction-compiled, and fully-compiled inference
// strategies, showing how the number of DBMS requests and tuples shipped
// changes along the range — and why "more compiled" is not always better
// when only the first solution is wanted.
package main

import (
	"fmt"
	"log"

	braid "repro"
)

const kbSrc = `
	:- base(parent/2).
	:- base(male/1).
	:- base(female/1).
	:- mutex(male/1, female/1).
	father(X, Y) :- parent(X, Y), male(X).
	grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
	sibling(X, Y) :- parent(P, X), parent(P, Y), X != Y.
	uncle(X, Y) :- sibling(X, P), parent(P, Y), male(X).
	anc(X, Y) :- parent(X, Y).
	anc(X, Y) :- parent(X, Z), anc(Z, Y).
`

func loadDB() *braid.DB {
	db := braid.NewDB()
	db.MustExec(`CREATE TABLE parent (p TEXT, c TEXT)`)
	db.MustExec(`INSERT INTO parent VALUES
		('adam','bea'), ('adam','ben'), ('bea','cora'), ('bea','carl'),
		('ben','dina'), ('cora','eli'), ('carl','finn'), ('dina','gail'),
		('eli','hank'), ('finn','iris')`)
	db.MustExec(`CREATE TABLE male (x TEXT)`)
	db.MustExec(`INSERT INTO male VALUES ('adam'),('ben'),('carl'),('eli'),('finn'),('hank')`)
	db.MustExec(`CREATE TABLE female (x TEXT)`)
	db.MustExec(`INSERT INTO female VALUES ('bea'),('cora'),('dina'),('gail'),('iris')`)
	return db
}

func main() {
	kb, err := braid.ParseKB(kbSrc)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{"grandparent(X, Z)?", "uncle(X, Y)?", `anc("adam", Y)?`}

	fmt.Println("== all solutions, per strategy ==")
	fmt.Printf("%-14s %8s %8s %8s %10s\n", "strategy", "answers", "remote", "tuples", "simResp")
	for _, strat := range []string{"interpreted", "conjunction", "compiled"} {
		sys, err := braid.New(kb, loadDB(), braid.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		answers := 0
		for _, q := range queries {
			ans, err := sys.Ask(q)
			if err != nil {
				log.Fatal(err)
			}
			answers += ans.Count()
			if ans.Err() != nil {
				log.Fatal(ans.Err())
			}
		}
		st := sys.Stats()
		fmt.Printf("%-14s %8d %8d %8d %9.1fms\n",
			strat, answers, st.RemoteRequests, st.RemoteTuples, st.ResponseSimMS)
	}

	fmt.Println("\n== first solution only (single-solution strategy) ==")
	fmt.Printf("%-14s %8s %8s\n", "strategy", "remote", "tuples")
	for _, strat := range []string{"interpreted", "compiled"} {
		sys, err := braid.New(kb, loadDB(), braid.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		ans, err := sys.Ask(`anc("adam", Y)?`)
		if err != nil {
			log.Fatal(err)
		}
		if row, ok := ans.Next(); ok {
			fmt.Printf("%-14s first answer Y=%v", strat, row["Y"])
		}
		ans.Close()
		st := sys.Stats()
		fmt.Printf("  remote=%d tuples=%d\n", st.RemoteRequests, st.RemoteTuples)
	}
	fmt.Println("\n(the interpreted engine stops after the tuples it needs;")
	fmt.Println(" the compiled engine has already shipped whole relations)")
}
