// Command quickstart is the smallest end-to-end BrAID session: a knowledge
// base with one derived relation, a two-table database, one AI query, and
// the data-layer statistics that show what the Cache Management System did.
package main

import (
	"fmt"
	"log"

	braid "repro"
)

func main() {
	kb, err := braid.ParseKB(`
		:- base(parent/2).
		:- base(male/1).
		grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
		grandfather(X, Z) :- grandparent(X, Z), male(X).
	`)
	if err != nil {
		log.Fatal(err)
	}

	db := braid.NewDB()
	db.MustExec(`CREATE TABLE parent (p TEXT, c TEXT)`)
	db.MustExec(`INSERT INTO parent VALUES
		('ann','bob'), ('ann','cat'),
		('bob','dan'), ('bob','eve'),
		('cat','fay'), ('dan','gus')`)
	db.MustExec(`CREATE TABLE male (x TEXT)`)
	db.MustExec(`INSERT INTO male VALUES ('bob'), ('dan'), ('gus')`)

	sys, err := braid.New(kb, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== grandparent(X, Z)? ==")
	ans, err := sys.Ask("grandparent(X, Z)?")
	if err != nil {
		log.Fatal(err)
	}
	for row, ok := ans.Next(); ok; row, ok = ans.Next() {
		fmt.Printf("  %s is a grandparent of %s\n", row["X"], row["Z"])
	}
	if ans.Err() != nil {
		log.Fatal(ans.Err())
	}

	// The same query again: answered from the cache, no new remote requests.
	before := sys.Stats().RemoteRequests
	ans2, _ := sys.Ask("grandparent(X, Z)?")
	n := ans2.Count()
	fmt.Printf("\nre-asked: %d answers, new remote requests: %d\n",
		n, sys.Stats().RemoteRequests-before)

	fmt.Printf("\nstats: %s\n", sys.Stats())
	fmt.Println("\ncache model:")
	fmt.Println(sys.CacheModel())
}
