// Command closure demonstrates the CMS as a standalone interface (the paper
// notes it "may be used by systems other than" the logic IE, Section 3) and
// the fixed-point operator of Section 2's second-order templates: raw CAQL
// queries against the cache, and the transitive closure of a *view* — a
// flight network restricted to cheap hops — computed entirely by the CMS.
package main

import (
	"fmt"
	"log"
	"sort"

	braid "repro"
)

func main() {
	// No rules at all: this client speaks CAQL directly to the CMS.
	kb, err := braid.ParseKB(`:- base(flight/3).`)
	if err != nil {
		log.Fatal(err)
	}
	db := braid.NewDB()
	db.MustExec(`CREATE TABLE flight (orig TEXT, dest TEXT, fare INT)`)
	db.MustExec(`INSERT INTO flight VALUES
		('sfo','den',120), ('den','ord',90), ('ord','jfk',110),
		('sfo','lax',60),  ('lax','jfk',450),
		('jfk','lhr',300), ('ord','sfo',95)`)

	sys, err := braid.New(kb, db)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== raw CAQL through the CMS ==")
	rows, err := sys.QueryCAQL(`cheap(O, D) :- flight(O, D, F) & F < 150`)
	if err != nil {
		log.Fatal(err)
	}
	printPairs("cheap hops", rows, "O", "D")

	fmt.Println("\n== transitive closure of the cheap-hop view (CMS fixpoint) ==")
	closure, err := sys.Closure(`cheap(O, D) :- flight(O, D, F) & F < 150`)
	if err != nil {
		log.Fatal(err)
	}
	printPairs("reachable on cheap fares", closure, "O", "D")

	// The base view was served from the cache the second time: the fixpoint
	// reused the cheap-hop result already cached by the raw query.
	st := sys.Stats()
	fmt.Printf("\nstats: %s\n", st)
	if st.CacheHits == 0 {
		fmt.Println("(expected the closure to reuse the cached view!)")
	}
}

func printPairs(label string, rows []map[string]any, a, b string) {
	pairs := make([]string, 0, len(rows))
	for _, r := range rows {
		pairs = append(pairs, fmt.Sprintf("%v->%v", r[a], r[b]))
	}
	sort.Strings(pairs)
	fmt.Printf("%s (%d):\n", label, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %s\n", p)
	}
}
