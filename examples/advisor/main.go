// Command advisor makes the paper's Section 4.2 artifacts visible: it prints
// the advice bundle (view specifications with producer/consumer annotations
// and the path expression) the inference engine generates for the paper's
// Example 1 knowledge base, then runs the query session twice — with and
// without advice — to show prefetching and generalization at work.
package main

import (
	"fmt"
	"log"

	braid "repro"
)

// The paper's Example 1 knowledge base (Section 4.2.2).
const kbSrc = `
	:- base(b1/2).
	:- base(b2/2).
	:- base(b3/3).
	k1(X, Y) :- b1(c1, Y), k2(X, Y).
	k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
	k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
`

func loadDB() *braid.DB {
	db := braid.NewDB()
	db.MustExec(`CREATE TABLE b1 (x TEXT, y INT)`)
	db.MustExec(`CREATE TABLE b2 (x INT, y INT)`)
	db.MustExec(`CREATE TABLE b3 (x INT, y TEXT, z INT)`)
	db.MustExec(`INSERT INTO b1 VALUES ('c1',1), ('c1',2), ('c3',3), ('d',1), ('c1',4)`)
	db.MustExec(`INSERT INTO b2 VALUES (10,1), (11,2), (12,2), (13,4), (14,1)`)
	db.MustExec(`INSERT INTO b3 VALUES
		(1,'c2',1), (2,'c2',2), (1,'c2',4), (4,'c2',2),
		(10,'c3',3), (11,'c3',1), (3,'c3',2)`)
	return db
}

func run(label string, opts ...braid.Option) {
	kb, err := braid.ParseKB(kbSrc)
	if err != nil {
		log.Fatal(err)
	}
	opts = append(opts, braid.WithStrategy("conjunction"), braid.WithThinkTime(200))
	sys, err := braid.New(kb, loadDB(), opts...)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := sys.Ask("k1(X, Y)?")
	if err != nil {
		log.Fatal(err)
	}
	n := ans.Count()
	if ans.Err() != nil {
		log.Fatal(ans.Err())
	}
	st := sys.Stats()
	fmt.Printf("%-16s answers=%d remote=%d prefetches=%d generalizations=%d simResp=%.1fms\n",
		label, n, st.RemoteRequests, st.Prefetches, st.Generalizations, st.ResponseSimMS)
}

func main() {
	kb, err := braid.ParseKB(kbSrc)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := braid.New(kb, loadDB(), braid.WithStrategy("conjunction"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== advice generated for k1(X, Y)? (paper Example 1) ==")
	adv, err := sys.Advice("k1(X, Y)?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(adv)

	fmt.Println("== session with vs without advice ==")
	run("with advice")
	run("without advice", braid.WithoutAdvice())

	fmt.Println("\n(with advice: the path expression lets the CMS prefetch the")
	fmt.Println(" follower views and generalize repeated consumer-bound queries)")
}
